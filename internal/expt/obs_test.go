package expt

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"heterohadoop/internal/obs"
)

// cancelOnSimWork is an observer that cancels its context the first time
// the simulator layer does any work — a sim.run span on a cache miss, or a
// cache counter on a hit/coalesce — so cancellation fires mid-sweep
// regardless of the process-wide cache's state.
type cancelOnSimWork struct {
	obs.Observer
	once   sync.Once
	cancel context.CancelFunc
}

func (c *cancelOnSimWork) Enabled() bool { return true }

func (c *cancelOnSimWork) SpanStart(name string, attrs []obs.Attr) obs.SpanID {
	if name == "sim.run" {
		c.once.Do(c.cancel)
	}
	return c.Observer.SpanStart(name, attrs)
}

func (c *cancelOnSimWork) Count(name string, delta int64) {
	if strings.HasPrefix(name, "sim.cache.") {
		c.once.Do(c.cancel)
	}
	c.Observer.Count(name, delta)
}

func TestRunAllCtxCancelMidSweepAborts(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelOnSimWork{Observer: obs.NewCollector(), cancel: cancel}
	ctx = obs.NewContext(ctx, tr)

	tables, err := RunAllCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllCtx after mid-sweep cancel: %v, want wrapped context.Canceled", err)
	}
	if tables != nil {
		t.Errorf("%d tables returned alongside cancellation", len(tables))
	}
}

func TestGeneratorCtxPreCancelled(t *testing.T) {
	g, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled RunCtx: %v, want wrapped context.Canceled", err)
	}
}

func TestGeneratorEmitsArtefactSpan(t *testing.T) {
	g, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	ctx := obs.NewContext(context.Background(), c)
	if _, err := g.RunCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if n := c.SpanCount("expt.artefact"); n != 1 {
		t.Errorf("expt.artefact span count %d, want 1", n)
	}
	// The sweep behind fig3 must surface at the simulator layer too —
	// either fresh sim.run spans or cache counters, depending on what
	// earlier tests left in the process-wide cache.
	snap := c.Snapshot()
	simWork := snap.Spans["sim.run"].Count +
		snap.Counters["sim.cache.hits"] + snap.Counters["sim.cache.misses"] + snap.Counters["sim.cache.coalesced"]
	if simWork == 0 {
		t.Error("no simulator-level telemetry recorded under fig3")
	}
}

func TestByIDWrapsErrUnknownArtefact(t *testing.T) {
	_, err := ByID("fig99")
	if !errors.Is(err, ErrUnknownArtefact) {
		t.Errorf("ByID(fig99): %v, want wrapped ErrUnknownArtefact", err)
	}
}
