package expt

import (
	"context"
	"fmt"

	"heterohadoop/internal/accel"
	"heterohadoop/internal/pool"
	"heterohadoop/internal/sim"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// accelRatio computes the paper's Eq. 1 before/after speedup ratio for one
// workload at the given knobs.
func accelRatio(ctx context.Context, w workloads.Workload, blockMB int, fGHz, acceleration float64) (float64, error) {
	data := paperDataSize(w.Name())
	aB, err := runCtx(ctx, w, sim.AtomNode(8), data, blockMB, fGHz)
	if err != nil {
		return 0, err
	}
	xB, err := runCtx(ctx, w, sim.XeonNode(8), data, blockMB, fGHz)
	if err != nil {
		return 0, err
	}
	fpga := accel.PCIeGen3x8()
	off := accel.DefaultOffload(acceleration)
	aA, err := accel.Apply(aB, data, fpga, off)
	if err != nil {
		return 0, err
	}
	xA, err := accel.Apply(xB, data, fpga, off)
	if err != nil {
		return 0, err
	}
	return accel.SpeedupRatio(aB, xB, aA, xA), nil
}

// accelTable builds a table of Eq. 1 ratios over a swept parameter. The
// (value, workload) grid is flattened onto the worker pool; each ratio's
// four simulator runs go through the result cache, so the 512 MB / 1.8 GHz
// cells shared between Figs 14-16 are computed once.
func accelTable(ctx context.Context, id, title, param string, values []string, eval func(w workloads.Workload, i int) (float64, error)) (Table, error) {
	all := workloads.All()
	header := append([]string{param}, func() []string {
		var h []string
		for _, w := range all {
			h = append(h, shortName(w.Name()))
		}
		return h
	}()...)
	ratios, err := pool.MapCtx(ctx, Parallelism(), len(values)*len(all), func(k int) (float64, error) {
		return eval(all[k%len(all)], k/len(all))
	})
	if err != nil {
		return Table{}, err
	}
	var rows [][]string
	for i, v := range values {
		row := []string{v}
		for wi := range all {
			row = append(row, f2(ratios[i*len(all)+wi]))
		}
		rows = append(rows, row)
	}
	return Table{ID: id, Title: title, Header: header, Rows: rows}, nil
}

// fig14Accelerations is the paper's swept mapper acceleration range.
var fig14Accelerations = []float64{1, 2, 5, 10, 20, 40, 60, 80, 100}

// Fig14 sweeps the mapper acceleration rate at 512 MB / 1.8 GHz. It is
// Fig14Ctx with a background context.
func Fig14() (Table, error) { return Fig14Ctx(context.Background()) }

// Fig14Ctx is Fig14 with cancellation and observability.
func Fig14Ctx(ctx context.Context) (Table, error) {
	var labels []string
	for _, k := range fig14Accelerations {
		labels = append(labels, fmt.Sprintf("%gx", k))
	}
	return accelTable(ctx, "fig14",
		"Speedup of Atom vs Xeon after acceleration relative to before (Eq. 1) vs mapper acceleration",
		"Accel", labels,
		func(w workloads.Workload, i int) (float64, error) {
			return accelRatio(ctx, w, 512, 1.8, fig14Accelerations[i])
		})
}

// Fig15 sweeps frequency at a fixed 30x acceleration. It is Fig15Ctx with
// a background context.
func Fig15() (Table, error) { return Fig15Ctx(context.Background()) }

// Fig15Ctx is Fig15 with cancellation and observability.
func Fig15Ctx(ctx context.Context) (Table, error) {
	var labels []string
	for _, f := range paperFrequencies {
		labels = append(labels, f1(f)+"GHz")
	}
	return accelTable(ctx, "fig15",
		"Post-acceleration speedup ratio (Eq. 1) vs frequency (30x acceleration, 512MB)",
		"Freq", labels,
		func(w workloads.Workload, i int) (float64, error) {
			return accelRatio(ctx, w, 512, paperFrequencies[i], 30)
		})
}

// Fig16 sweeps HDFS block size at a fixed 30x acceleration. It is Fig16Ctx
// with a background context.
func Fig16() (Table, error) { return Fig16Ctx(context.Background()) }

// Fig16Ctx is Fig16 with cancellation and observability.
func Fig16Ctx(ctx context.Context) (Table, error) {
	var labels []string
	for _, bs := range microBlockSizes {
		labels = append(labels, fmt.Sprintf("%dMB", bs))
	}
	return accelTable(ctx, "fig16",
		"Post-acceleration speedup ratio (Eq. 1) vs HDFS block size (30x acceleration, 1.8GHz)",
		"Block", labels,
		func(w workloads.Workload, i int) (float64, error) {
			bs := microBlockSizes[i]
			if w.Name() == "naivebayes" || w.Name() == "fpgrowth" {
				// Real-world applications start at 64 MB per §3.1.1.
				if bs < 64 {
					bs = 64
				}
			}
			return accelRatio(ctx, w, bs, 1.8, 30)
		})
}

var _ = units.GB // keep units imported for symmetry with sibling files
