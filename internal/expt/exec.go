package expt

// exec.go is the sweep executor: generators enumerate their cell grid —
// every (workload, platform, data, block, frequency) simulation an
// artefact needs — and runCells fans the grid out across a worker pool.
// Cells land back in index order and row assembly stays serial, so the
// rendered tables are byte-identical at any pool width; the golden files
// and TestPoolWidthDeterminism pin that down. Cell results come from
// sim.RunCached, so cells shared across artefacts (the 512 MB grid behind
// Figs 5-9, the cost cells behind Table 3 / Fig 17 / the scheduling
// search) are simulated once per process.

import (
	"context"
	"sync/atomic"

	"heterohadoop/internal/pool"
	"heterohadoop/internal/sim"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// sweepWidth is the configured pool width; 0 means pool.DefaultWidth.
var sweepWidth atomic.Int32

// Parallelism reports the worker-pool width used for sweep grids.
func Parallelism() int {
	if w := sweepWidth.Load(); w > 0 {
		return int(w)
	}
	return pool.DefaultWidth()
}

// SetParallelism sets the pool width for subsequent sweeps; n <= 0
// restores the default (GOMAXPROCS). It returns the previous setting (0
// for default) so callers can restore it:
//
//	defer expt.SetParallelism(expt.SetParallelism(1))
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(sweepWidth.Swap(int32(n)))
}

// cell is one simulator evaluation in a sweep grid.
type simCell struct {
	w       workloads.Workload
	node    sim.Node
	data    units.Bytes
	blockMB int
	fGHz    float64
}

// runCellsCtx evaluates the grid across the pool and returns reports in
// cell order. The context flows into every cell, so cancellation stops
// the sweep within one simulation and the carried observer sees each
// cell's sim.run span and cache counters.
func runCellsCtx(ctx context.Context, cells []simCell) ([]sim.Report, error) {
	return pool.MapCtx(ctx, Parallelism(), len(cells), func(i int) (sim.Report, error) {
		c := cells[i]
		return runCtx(ctx, c.w, c.node, c.data, c.blockMB, c.fGHz)
	})
}

// mapRowsCtx builds one row per index across the pool, preserving row
// order.
func mapRowsCtx(ctx context.Context, n int, fn func(i int) ([]string, error)) ([][]string, error) {
	return pool.MapCtx(ctx, Parallelism(), n, fn)
}
