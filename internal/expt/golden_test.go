package expt

// golden_test.go pins every artefact's exact output against the checked-in
// golden files, protecting the calibration from accidental drift: any model
// or profile change that perturbs a reproduced figure fails here until the
// goldens are regenerated deliberately with -update.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artefact files")

func TestGoldenArtefacts(t *testing.T) {
	for _, g := range All() {
		g := g
		t.Run(g.ID, func(t *testing.T) {
			tbl, err := g.Run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tbl.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", g.ID+".csv")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/expt -run TestGoldenArtefacts -update`): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from its golden output; if the change is intentional, regenerate with -update", g.ID)
			}
		})
	}
}
