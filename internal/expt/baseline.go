package expt

import (
	"context"
	"fmt"

	"heterohadoop/internal/cpu"
	"heterohadoop/internal/power"
	"heterohadoop/internal/sim"
	"heterohadoop/internal/traditional"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// Table1 echoes the paper's architectural parameters (Table 1) from the
// shipped core models. It is Table1Ctx with a background context.
func Table1() (Table, error) { return Table1Ctx(context.Background()) }

// Table1Ctx is Table1 with cancellation and observability (the table is
// static, so only the generator-level span applies).
func Table1Ctx(_ context.Context) (Table, error) {
	atom, xeon := cpu.AtomC2758(), cpu.XeonE52420()
	row := func(name string, a, x string) []string { return []string{name, a, x} }
	cacheRow := func(core cpu.Core, i int) string {
		if i >= len(core.Hierarchy.Levels) {
			return "-"
		}
		return core.Hierarchy.Levels[i].Size.String()
	}
	return Table{
		ID:     "table1",
		Title:  "Architectural parameters",
		Header: []string{"Parameter", "Intel Atom C2758", "Intel Xeon E5-2420"},
		Rows: [][]string{
			row("Operating frequency", atom.NominalFrequency.String(), xeon.NominalFrequency.String()),
			row("Micro-architecture", "Silvermont (2-wide)", "Sandy Bridge (4-wide OoO)"),
			row("L1d cache", cacheRow(atom, 0), cacheRow(xeon, 0)),
			row("L2 cache", cacheRow(atom, 1), cacheRow(xeon, 1)),
			row("L3 cache", cacheRow(atom, 2), cacheRow(xeon, 2)),
			row("Cores", fmt.Sprintf("%d", atom.MaxCores), fmt.Sprintf("%d", xeon.MaxCores)),
			row("Chip area", atom.Area.String(), xeon.Area.String()),
			row("DVFS points", fmt.Sprintf("%v", atom.Frequencies), fmt.Sprintf("%v", xeon.Frequencies)),
		},
	}, nil
}

// Table2 lists the studied applications (Table 2). It is Table2Ctx with a
// background context.
func Table2() (Table, error) { return Table2Ctx(context.Background()) }

// Table2Ctx is Table2 with cancellation and observability (the table is
// static, so only the generator-level span applies).
func Table2Ctx(_ context.Context) (Table, error) {
	rows := [][]string{}
	for _, w := range workloads.MicroBenchmarks() {
		rows = append(rows, []string{"Hadoop micro-benchmark", w.Name(), shortName(w.Name()), w.Class().String()})
	}
	for _, w := range workloads.RealWorld() {
		rows = append(rows, []string{"Real-world application", w.Name(), shortName(w.Name()), w.Class().String()})
	}
	rows = append(rows,
		[]string{"Traditional CPU suite", "spec2006", "SPEC", "-"},
		[]string{"Traditional parallel suite", "parsec2.1", "PARSEC", "-"},
	)
	return Table{
		ID:     "table2",
		Title:  "Studied applications",
		Header: []string{"Type", "Workload", "Code", "Class"},
		Rows:   rows,
	}, nil
}

// Fig1 reproduces the IPC comparison: suite-average IPC of SPEC, PARSEC and
// Hadoop on both cores at 1.8 GHz. It is Fig1Ctx with a background context.
func Fig1() (Table, error) { return Fig1Ctx(context.Background()) }

// Fig1Ctx is Fig1 with cancellation and observability.
func Fig1Ctx(ctx context.Context) (Table, error) {
	if err := ctx.Err(); err != nil {
		return Table{}, fmt.Errorf("expt: fig1: cancelled: %w", err)
	}
	atomCore, xeonCore := cpu.AtomC2758(), cpu.XeonE52420()
	atomPM, xeonPM := power.AtomNode(), power.XeonNode()
	f := 1.8 * units.GHz

	suiteIPC := func(core cpu.Core, pm power.Model, s traditional.Suite) (float64, error) {
		m, err := traditional.Measure(core, pm, s, f)
		if err != nil {
			return 0, err
		}
		return m.IPC, nil
	}
	hadoopIPC := func(core cpu.Core) (float64, error) {
		sum := 0.0
		for _, w := range workloads.All() {
			t, err := core.Run(w.Spec().MapProfile, 64*units.MB, f)
			if err != nil {
				return 0, err
			}
			sum += t.IPC
		}
		return sum / float64(len(workloads.All())), nil
	}

	specA, err := suiteIPC(atomCore, atomPM, traditional.SPEC)
	if err != nil {
		return Table{}, err
	}
	specX, err := suiteIPC(xeonCore, xeonPM, traditional.SPEC)
	if err != nil {
		return Table{}, err
	}
	parsecA, err := suiteIPC(atomCore, atomPM, traditional.PARSEC)
	if err != nil {
		return Table{}, err
	}
	parsecX, err := suiteIPC(xeonCore, xeonPM, traditional.PARSEC)
	if err != nil {
		return Table{}, err
	}
	hadoopA, err := hadoopIPC(atomCore)
	if err != nil {
		return Table{}, err
	}
	hadoopX, err := hadoopIPC(xeonCore)
	if err != nil {
		return Table{}, err
	}

	return Table{
		ID:     "fig1",
		Title:  "Average IPC on little (Atom) and big (Xeon) cores",
		Header: []string{"Suite", "Atom IPC", "Xeon IPC", "Xeon/Atom"},
		Rows: [][]string{
			{"Avg_Spec", f2(specA), f2(specX), f2(specX / specA)},
			{"Avg_Parsec", f2(parsecA), f2(parsecX), f2(parsecX / parsecA)},
			{"Avg_Hadoop", f2(hadoopA), f2(hadoopX), f2(hadoopX / hadoopA)},
		},
	}, nil
}

// Fig2 reproduces the EDxP ratio comparison between suites: Atom-to-Xeon
// EDP, ED2P and ED3P ratios for SPEC, PARSEC and the Hadoop average. It is
// Fig2Ctx with a background context.
func Fig2() (Table, error) { return Fig2Ctx(context.Background()) }

// Fig2Ctx is Fig2 with cancellation and observability.
func Fig2Ctx(ctx context.Context) (Table, error) {
	f := 1.8 * units.GHz
	ratioRow := func(label string, edp, ed2p, ed3p float64) []string {
		return []string{label, f2(edp), f2(ed2p), f2(ed3p)}
	}
	var rows [][]string
	for _, s := range []traditional.Suite{traditional.SPEC, traditional.PARSEC} {
		a, err := traditional.Measure(cpu.AtomC2758(), power.AtomNode(), s, f)
		if err != nil {
			return Table{}, err
		}
		x, err := traditional.Measure(cpu.XeonE52420(), power.XeonNode(), s, f)
		if err != nil {
			return Table{}, err
		}
		label := "Avg_Spec"
		if s == traditional.PARSEC {
			label = "Avg_Parsec"
		}
		rows = append(rows, ratioRow(label,
			a.Sample.EDP()/x.Sample.EDP(),
			a.Sample.ED2P()/x.Sample.ED2P(),
			a.Sample.ED3P()/x.Sample.ED3P()))
	}
	// Hadoop average over the six workloads at the paper configuration.
	var sumEDP, sumED2P, sumED3P float64
	for _, w := range workloads.All() {
		a, err := runCtx(ctx, w, sim.AtomNode(8), paperDataSize(w.Name()), 512, 1.8)
		if err != nil {
			return Table{}, err
		}
		x, err := runCtx(ctx, w, sim.XeonNode(8), paperDataSize(w.Name()), 512, 1.8)
		if err != nil {
			return Table{}, err
		}
		ae := float64(a.Total.Energy)
		xe := float64(x.Total.Energy)
		at := float64(a.Total.Time)
		xt := float64(x.Total.Time)
		sumEDP += (ae * at) / (xe * xt)
		sumED2P += (ae * at * at) / (xe * xt * xt)
		sumED3P += (ae * at * at * at) / (xe * xt * xt * xt)
	}
	n := float64(len(workloads.All()))
	rows = append(rows, ratioRow("Avg_Hadoop", sumEDP/n, sumED2P/n, sumED3P/n))
	return Table{
		ID:     "fig2",
		Title:  "EDP, ED2P and ED3P ratio (Atom vs Xeon) per suite",
		Header: []string{"Suite", "EDP", "ED2P", "ED3P"},
		Rows:   rows,
	}, nil
}
