package expt

import (
	"context"
	"fmt"

	"heterohadoop/internal/cpu"
	"heterohadoop/internal/metrics"
	"heterohadoop/internal/pool"
	"heterohadoop/internal/sched"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// costSamples evaluates all (platform, core count) cells of Table 3 for one
// workload, fanning the cell grid out across the pool. The underlying
// simulations are cached, so Table 3, Fig 17 and the scheduling search all
// share one evaluation per cell.
func costSamples(ctx context.Context, w workloads.Workload) (map[string]metrics.Sample, error) {
	data := paperDataSize(w.Name())
	type costCell struct {
		kind  cpu.Kind
		key   string
		cores int
	}
	var cells []costCell
	for _, kind := range []cpu.Kind{cpu.Little, cpu.Big} {
		label := "A"
		if kind == cpu.Big {
			label = "X"
		}
		for _, m := range sched.CoreCounts {
			cells = append(cells, costCell{kind, fmt.Sprintf("%s%d", label, m), m})
		}
	}
	samples, err := pool.MapCtx(ctx, Parallelism(), len(cells), func(i int) (metrics.Sample, error) {
		return sched.EvaluateCtx(ctx, w, cells[i].kind, cells[i].cores, data, 1.8*units.GHz)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]metrics.Sample, len(cells))
	for i, c := range cells {
		out[c.key] = samples[i]
	}
	return out, nil
}

// allCostSamples evaluates costSamples for every workload concurrently,
// returned in workloads.All() order.
func allCostSamples(ctx context.Context) ([]map[string]metrics.Sample, error) {
	all := workloads.All()
	return pool.MapCtx(ctx, Parallelism(), len(all), func(i int) (map[string]metrics.Sample, error) {
		return costSamples(ctx, all[i])
	})
}

// Table3 reproduces the operational and capital cost table: EDP, ED2P, EDAP
// and ED2AP for 2/4/6/8 cores (mappers = cores) on both platforms. It is
// Table3Ctx with a background context.
func Table3() (Table, error) { return Table3Ctx(context.Background()) }

// Table3Ctx is Table3 with cancellation and observability.
func Table3Ctx(ctx context.Context) (Table, error) {
	header := []string{"Metric", "Workload", "Atom-M2", "Atom-M4", "Atom-M6", "Atom-M8", "Xeon-M2", "Xeon-M4", "Xeon-M6", "Xeon-M8"}
	metricsList := []struct {
		name  string
		score func(metrics.Sample) float64
	}{
		{"EDP (J s)", func(s metrics.Sample) float64 { return s.EDP() }},
		{"ED2P (J s2)", func(s metrics.Sample) float64 { return s.ED2P() }},
		{"EDAP (J mm2 s)", func(s metrics.Sample) float64 { return s.EDAP() }},
		{"ED2AP (J mm2 s2)", func(s metrics.Sample) float64 { return s.ED2AP() }},
	}
	bySample, err := allCostSamples(ctx)
	if err != nil {
		return Table{}, err
	}
	var rows [][]string
	cells := []string{"A2", "A4", "A6", "A8", "X2", "X4", "X6", "X8"}
	for _, mt := range metricsList {
		for wi, w := range workloads.All() {
			samples := bySample[wi]
			row := []string{mt.name, shortName(w.Name())}
			for _, c := range cells {
				row = append(row, sci(mt.score(samples[c])))
			}
			rows = append(rows, row)
		}
	}
	return Table{
		ID:     "table3",
		Title:  "Operational and capital cost of Hadoop applications (512MB-capped splits, 1.8GHz)",
		Header: header,
		Rows:   rows,
	}, nil
}

// Fig17 reproduces the spider-graph data: the four cost metrics for every
// (platform, core count), normalized to the 8-Xeon-core configuration. It
// is Fig17Ctx with a background context.
func Fig17() (Table, error) { return Fig17Ctx(context.Background()) }

// Fig17Ctx is Fig17 with cancellation and observability.
func Fig17Ctx(ctx context.Context) (Table, error) {
	header := []string{"Workload", "Config", "EDP", "ED2P", "EDAP", "ED2AP"}
	bySample, err := allCostSamples(ctx)
	if err != nil {
		return Table{}, err
	}
	var rows [][]string
	for wi, w := range workloads.All() {
		samples := bySample[wi]
		ref := samples["X8"]
		for _, c := range []string{"A2", "A4", "A6", "A8", "X2", "X4", "X6", "X8"} {
			s := samples[c]
			rows = append(rows, []string{
				shortName(w.Name()), c,
				f2(metrics.Ratio(s.EDP(), ref.EDP())),
				f2(metrics.Ratio(s.ED2P(), ref.ED2P())),
				f2(metrics.Ratio(s.EDAP(), ref.EDAP())),
				f2(metrics.Ratio(s.ED2AP(), ref.ED2AP())),
			})
		}
	}
	return Table{
		ID:     "fig17",
		Title:  "Cost metrics normalized to 8 Xeon cores (spider-graph data)",
		Header: header,
		Rows:   rows,
	}, nil
}

// SchedulingCase reproduces the §3.5 case study: the policy decision and
// the exhaustive-search optimum for each workload under each goal. It is
// SchedulingCaseCtx with a background context.
func SchedulingCase() (Table, error) { return SchedulingCaseCtx(context.Background()) }

// SchedulingCaseCtx is SchedulingCase with cancellation and observability.
func SchedulingCaseCtx(ctx context.Context) (Table, error) {
	header := []string{"Workload", "Class", "Goal", "Policy", "Optimal", "Optimal score"}
	all := workloads.All()
	goals := []sched.Goal{sched.MinEDP, sched.MinED2P, sched.MinEDAP, sched.MinED2AP}
	rows, err := mapRowsCtx(ctx, len(all)*len(goals), func(k int) ([]string, error) {
		w, goal := all[k/len(goals)], goals[k%len(goals)]
		policy := sched.Policy(w.Class(), goal)
		opt, sample, err := sched.OptimalCtx(ctx, w, goal, paperDataSize(w.Name()), 1.8*units.GHz)
		if err != nil {
			return nil, err
		}
		score := map[sched.Goal]func() float64{
			sched.MinEDP:   sample.EDP,
			sched.MinED2P:  sample.ED2P,
			sched.MinEDAP:  sample.EDAP,
			sched.MinED2AP: sample.ED2AP,
		}[goal]()
		return []string{
			shortName(w.Name()), w.Class().String(), goal.String(),
			fmt.Sprintf("%v/%d", policy.Kind, policy.Cores),
			fmt.Sprintf("%v/%d", opt.Kind, opt.Cores),
			sci(score),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "sched",
		Title:  "Scheduling case study: paper policy vs exhaustive optimum",
		Header: header,
		Rows:   rows,
	}, nil
}
