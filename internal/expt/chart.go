package expt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// dataHeaders are the per-workload series columns that should never be
// treated as row labels.
var dataHeaders = map[string]bool{
	"WC": true, "ST": true, "GP": true, "TS": true, "NB": true, "FP": true,
}

// isDataHeader recognizes sibling data-series columns.
func isDataHeader(h string) bool {
	if dataHeaders[h] {
		return true
	}
	for code := range dataHeaders {
		if strings.HasPrefix(h, code+"[") || strings.HasPrefix(h, code+"-") {
			return true
		}
	}
	return strings.HasSuffix(h, "EDP") || strings.HasSuffix(h, "[s]") || strings.HasSuffix(h, "[J]")
}

// anyTrue reports whether any flag is set.
func anyTrue(fs []bool) bool {
	for _, f := range fs {
		if f {
			return true
		}
	}
	return false
}

// RenderBars writes a horizontal ASCII bar chart of one numeric column,
// labelled by the concatenated non-numeric leading columns — a quick visual
// check of a figure's shape without leaving the terminal.
func (t Table) RenderBars(w io.Writer, column string, width int) error {
	if width < 8 {
		width = 40
	}
	col := -1
	for i, h := range t.Header {
		if h == column {
			col = i
			break
		}
	}
	if col < 0 {
		return fmt.Errorf("expt: %s has no column %q", t.ID, column)
	}
	// Label columns: everything left of the target except sibling data
	// columns (other workloads' series, recognizable by their headers).
	isLabel := make([]bool, col)
	for i := 0; i < col; i++ {
		isLabel[i] = !isDataHeader(t.Header[i])
	}
	if col > 0 && !anyTrue(isLabel) {
		isLabel[0] = true
	}
	type bar struct {
		label string
		value float64
	}
	var bars []bar
	max := 0.0
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(row[col], "%"), "x"), 64)
		if err != nil {
			continue // skip non-numeric cells (e.g. "-")
		}
		labelParts := make([]string, 0, col)
		for i := 0; i < col && i < len(row); i++ {
			if isLabel[i] {
				labelParts = append(labelParts, row[i])
			}
		}
		b := bar{label: strings.Join(labelParts, " "), value: v}
		bars = append(bars, b)
		if v > max {
			max = v
		}
	}
	if len(bars) == 0 {
		return fmt.Errorf("expt: %s column %q has no numeric cells", t.ID, column)
	}
	labelW := 0
	for _, b := range bars {
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s — %s ==\n", t.ID, t.Title, column); err != nil {
		return err
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.value / max * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s %v\n", labelW, b.label, strings.Repeat("#", n), b.value); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
