package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV renders the table as RFC-4180 CSV (header row first) for
// downstream plotting.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown table.
func (t Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
