package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/rpc"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func TestOptionsRejectInvalidValues(t *testing.T) {
	cfg := defaultConfig()
	for _, opt := range []Option{
		WithTaskTimeout(0), WithTaskTimeout(-time.Second),
		WithSpeculativeFraction(0), WithSpeculativeFraction(-1), WithSpeculativeFraction(1.5),
		WithPollInterval(0), WithPollInterval(-time.Millisecond),
		WithObserver(nil),
	} {
		opt(&cfg)
	}
	def := defaultConfig()
	if cfg != def {
		t.Errorf("invalid option values changed the config: %+v, want %+v", cfg, def)
	}

	WithTaskTimeout(time.Minute)(&cfg)
	WithSpeculativeFraction(0.25)(&cfg)
	WithPollInterval(time.Second)(&cfg)
	if cfg.taskTimeout != time.Minute || cfg.specFraction != 0.25 || cfg.pollInterval != time.Second {
		t.Errorf("valid option values not applied: %+v", cfg)
	}
}

func TestStartMasterAppliesOptions(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0",
		WithTaskTimeout(42*time.Second), WithSpeculativeFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.defaults.taskTimeout != 42*time.Second {
		t.Errorf("taskTimeout %v, want 42s", m.defaults.taskTimeout)
	}
	if m.defaults.specFraction != 0.75 {
		t.Errorf("specFraction %v, want 0.75", m.defaults.specFraction)
	}
}

func TestSubmitCtxAbortsOnCancel(t *testing.T) {
	// No workers: the job would sit in the map phase forever without the
	// deadline firing.
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	input := workloads.GenerateText(8*units.KB, 3)
	_, err = m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 2*1024)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aborted submit: %v, want wrapped context.DeadlineExceeded", err)
	}

	// The abort must return the master to idle so the next job can run.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := ConnectWorker("retry-"+strconv.Itoa(i), m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}()
		defer w.Close()
	}
	if _, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 2*1024); err != nil {
		t.Fatalf("submit after aborted job: %v", err)
	}
	wg.Wait()
}

// stealMapTask polls GetTask as workerID until the master hands out a map
// task, so tests can hold an in-flight assignment without running it.
func stealMapTask(t *testing.T, client *rpc.Client, workerID string) Task {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var task Task
		if err := client.Call("Master.GetTask", GetTaskArgs{WorkerID: workerID}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind == TaskMap {
			return task
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("never received a map task")
	return Task{}
}

// TestStaleCompletionRejectedAfterAbort reproduces the cross-job
// contamination hazard: a worker still executing a task from an aborted
// job reports its result after a new job has been submitted, with a Seq
// that is valid in the new job's range. The epoch guard must reject it so
// the aborted job's output is never recorded as the new job's.
func TestStaleCompletionRejectedAfterAbort(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stale, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	// Job A: the stale worker grabs map task 0, then the job is cancelled
	// with the task still in flight.
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := m.SubmitCtx(ctxA, JobDescriptor{Workload: "wordcount", NumReducers: 1},
			workloads.GenerateText(8*units.KB, 3), 2*1024)
		errA <- err
	}()
	staleTask := stealMapTask(t, stale, "stale")
	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted submit: %v, want wrapped context.Canceled", err)
	}

	// Job B: submitted before the stale worker reports. Wait for its map
	// phase, then deliver the aborted job's completion — same Seq, old
	// epoch — while no honest worker has run yet.
	inputB := workloads.GenerateText(8*units.KB, 5)
	resCh := make(chan *mapreduce.Result, 1)
	errB := make(chan error, 1)
	go func() {
		res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 1}, inputB, 2*1024)
		if err != nil {
			errB <- err
			return
		}
		resCh <- res
	}()
	deadline := time.Now().Add(5 * time.Second)
	var epochB uint64
	for epochB == 0 {
		m.mu.Lock()
		for _, js := range m.order {
			if js.state == JobRunning && js.phase == "map" {
				epochB = js.epoch
			}
		}
		m.mu.Unlock()
		if epochB != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job B never reached the map phase")
		}
		time.Sleep(time.Millisecond)
	}
	bogus := MapDone{
		WorkerID: "stale", Epoch: staleTask.Epoch, Seq: staleTask.Seq,
		Parts: [][]byte{mapreduce.EncodeSegment(mapreduce.SegmentFromKVs(
			[]mapreduce.KV{{Key: "bogus", Value: "999"}}))},
	}
	if err := stale.Call("Master.CompleteMap", bogus, &Ack{}); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	jsB := m.byEpoch[epochB]
	contaminated := jsB != nil && staleTask.Seq < len(jsB.mapTasks) && jsB.mapTasks[staleTask.Seq].done
	m.mu.Unlock()
	if contaminated {
		t.Fatal("stale completion from the aborted job was recorded against the new job")
	}

	// An honest worker finishes job B; its output must match job B's input
	// exactly, with no trace of the stale report.
	w, err := ConnectWorker("honest", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		if err := w.Run(); err != nil {
			t.Error(err)
		}
	}()
	select {
	case err := <-errB:
		t.Fatal(err)
	case res := <-resCh:
		got := outputCounts(t, res)
		if _, ok := got["bogus"]; ok {
			t.Error("stale map output surfaced in the new job's result")
		}
		want := map[string]int{}
		for _, word := range strings.Fields(string(inputB)) {
			want[word]++
		}
		if len(got) != len(want) {
			t.Fatalf("%d words, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("count[%q] = %d, want %d", k, got[k], v)
			}
		}
	case <-time.After(20 * time.Second):
		t.Fatal("job B never completed")
	}
}

// TestAbortedJobTasksNotReissued checks the abort winds the job down for
// pollers: the aborted job's undone tasks must not be handed out again
// (even after the reassignment timeout has passed), non-persistent workers
// get TaskDone, and the job's task tables are released.
func TestAbortedJobTasksNotReissued(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	client, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1},
			workloads.GenerateText(8*units.KB, 7), 2*1024)
		errCh <- err
	}()
	stealMapTask(t, client, "holder")
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted submit: %v, want wrapped context.Canceled", err)
	}

	// Past the task timeout the aborted job's tasks would be reissuable if
	// they were still in the pool; pollers must see TaskDone instead.
	time.Sleep(60 * time.Millisecond)
	var task Task
	if err := client.Call("Master.GetTask", GetTaskArgs{WorkerID: "late"}, &task); err != nil {
		t.Fatal(err)
	}
	if task.Kind != TaskDone {
		t.Errorf("poll after abort returned %q, want %q", task.Kind, TaskDone)
	}
	m.mu.Lock()
	leaked := len(m.jobs) != 0 || len(m.byEpoch) != 0 || len(m.order) != 0
	for _, js := range m.retired {
		if js.mapTasks != nil || js.redTasks != nil || js.partSegs != nil {
			leaked = true
		}
	}
	m.mu.Unlock()
	if leaked {
		t.Error("aborted job's task tables still pinned after abort")
	}
}

func TestSubmitCtxSentinels(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()

	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 0}, []byte("x"), 8); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("zero reducers: %v, want wrapped ErrInvalidJob", err)
	}
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "no-such", NumReducers: 1}, []byte("x"), 8); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("unknown workload: %v, want wrapped ErrInvalidJob", err)
	}
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, nil, 8); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty input: %v, want wrapped ErrEmptyInput", err)
	}
	m.Close()
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, []byte("x y"), 8); !errors.Is(err, ErrMasterClosed) {
		t.Errorf("closed master: %v, want wrapped ErrMasterClosed", err)
	}
}

func TestDistJobEmitsObserverEvents(t *testing.T) {
	c := obs.NewCollector()
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second), WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := ConnectWorker("obs-"+strconv.Itoa(i), m.Addr(), WithObserver(c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}()
		defer w.Close()
	}

	input := workloads.GenerateText(16*units.KB, 7)
	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 4*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if n := c.SpanCount("dist.submit"); n != 1 {
		t.Errorf("dist.submit span count %d, want 1", n)
	}
	want := int64(res.Counters.MapTasks + res.Counters.ReduceTasks)
	if n := c.SpanCount("dist.task"); n < want {
		t.Errorf("dist.task span count %d, want >= %d", n, want)
	}
	snap := c.Snapshot()
	if p := snap.Progress["dist.map/job-1"]; p.Done != p.Total || p.Total != res.Counters.MapTasks {
		t.Errorf("dist.map/job-1 progress %+v, want %d/%d", p, res.Counters.MapTasks, res.Counters.MapTasks)
	}
	if p := snap.Progress["dist.reduce/job-1"]; p.Done != p.Total || p.Total != res.Counters.ReduceTasks {
		t.Errorf("dist.reduce/job-1 progress %+v, want %d/%d", p, res.Counters.ReduceTasks, res.Counters.ReduceTasks)
	}
}

func TestReportFailureSurfacesRPCErrors(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := obs.NewCollector()
	w, err := ConnectWorker("rf", m.Addr(), WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}

	// Sever the connection, then fail a task: the failure report cannot
	// reach the master, and that delivery error must be counted instead of
	// dropped.
	if err := w.client.Close(); err != nil {
		t.Fatal(err)
	}
	w.reportFailure(Task{Kind: TaskMap, Seq: 1}, errors.New("synthetic task failure"))
	if n := w.ReportErrors(); n != 1 {
		t.Errorf("ReportErrors() = %d, want 1", n)
	}
	if n := c.Counter("dist.worker.report_errors"); n != 1 {
		t.Errorf("report_errors counter = %d, want 1", n)
	}
}

// TestSpeculativeAttemptsDistinguishableInTrace is the regression fence for
// attempt attribution: when a straggler's task is speculatively re-executed
// on another worker, the trace must contain phase events for BOTH attempts
// of the SAME task — same job, kind, index and epoch, different worker —
// so a timeline replay can show the duplicated work instead of silently
// folding the attempts into one row.
func TestSpeculativeAttemptsDistinguishableInTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)

	// Short timeout + small speculative fraction: a task held for ~200ms is
	// already a straggler, but the hard reassignment timeout (2s) never
	// fires inside the test.
	m, err := StartMaster("127.0.0.1:0",
		WithTaskTimeout(2*time.Second), WithSpeculativeFraction(0.1), WithObserver(tw))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	slowJob := func(sleep time.Duration) JobFactory {
		return func(desc JobDescriptor) (mapreduce.Job, error) {
			cfg := mapreduce.DefaultConfig("slowmap")
			cfg.NumReducers = desc.NumReducers
			return mapreduce.Job{
				Config: cfg,
				Mapper: mapreduce.MapperFunc(func(_, line string, emit mapreduce.Emitter) error {
					time.Sleep(sleep)
					emit(line, "1")
					return nil
				}),
				Reducer: mapreduce.IdentityReducer(),
			}, nil
		}
	}
	m.Registry().Register("slowmap", slowJob(0))

	// Worker registries are per-worker: the straggler's factory sleeps well
	// past the speculation age, the honest worker's does not, so the same
	// map task genuinely runs twice on distinct workers.
	straggler, err := ConnectWorker("w-slow", m.Addr(), WithObserver(tw))
	if err != nil {
		t.Fatal(err)
	}
	defer straggler.Close()
	straggler.Registry().Register("slowmap", slowJob(1500*time.Millisecond))
	var workerWg sync.WaitGroup
	workerWg.Add(1)
	go func() {
		defer workerWg.Done()
		// The straggler finishes its attempt after the job is done; its
		// completion is a duplicate the master ignores, and the next poll
		// tells it the job is over.
		if err := straggler.Run(); err != nil {
			t.Error(err)
		}
	}()

	resCh := make(chan *mapreduce.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		// One line, one split, one map task: the straggler must grab it.
		res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "slowmap", NumReducers: 1},
			[]byte("only line\n"), 1024)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Give the straggler time to take the task, then add the honest worker,
	// which can only receive the speculative backup copy.
	time.Sleep(300 * time.Millisecond)
	honest, err := ConnectWorker("w-fast", m.Addr(), WithObserver(tw))
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	honest.Registry().Register("slowmap", slowJob(0))
	workerWg.Add(1)
	go func() {
		defer workerWg.Done()
		if err := honest.Run(); err != nil {
			t.Error(err)
		}
	}()

	select {
	case err := <-errCh:
		t.Fatal(err)
	case <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("job never completed")
	}
	if m.Stats().Speculative == 0 {
		t.Fatal("no speculative attempt launched")
	}
	// Both polling loops exit on TaskDone; wait so the straggler's late
	// attempt lands in the trace, then flush the writer before reading.
	workerWg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the trace: map-phase events for task 0 must name both workers
	// under the same epoch.
	workers := map[string]uint64{} // worker -> epoch
	dec := json.NewDecoder(&buf)
	for {
		var ev obs.TraceEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.Type != "phase" || ev.Name != obs.PhaseMap.String() || ev.TaskKind != "map" || ev.Task != 0 {
			continue
		}
		if ev.Worker == "" {
			t.Errorf("map phase event without worker attribution: %+v", ev)
			continue
		}
		workers[ev.Worker] = ev.Epoch
	}
	if len(workers) < 2 {
		t.Fatalf("map task 0 phases name %d worker(s) %v, want both attempts", len(workers), workers)
	}
	epochs := map[uint64]bool{}
	for _, e := range workers {
		epochs[e] = true
	}
	if len(epochs) != 1 {
		t.Errorf("attempts of one job carry different epochs: %v", workers)
	}
}
