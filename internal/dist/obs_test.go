package dist

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"heterohadoop/internal/obs"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func TestOptionsRejectInvalidValues(t *testing.T) {
	cfg := defaultConfig()
	for _, opt := range []Option{
		WithTaskTimeout(0), WithTaskTimeout(-time.Second),
		WithSpeculativeFraction(0), WithSpeculativeFraction(-1), WithSpeculativeFraction(1.5),
		WithPollInterval(0), WithPollInterval(-time.Millisecond),
		WithObserver(nil),
	} {
		opt(&cfg)
	}
	def := defaultConfig()
	if cfg != def {
		t.Errorf("invalid option values changed the config: %+v, want %+v", cfg, def)
	}

	WithTaskTimeout(time.Minute)(&cfg)
	WithSpeculativeFraction(0.25)(&cfg)
	WithPollInterval(time.Second)(&cfg)
	if cfg.taskTimeout != time.Minute || cfg.specFraction != 0.25 || cfg.pollInterval != time.Second {
		t.Errorf("valid option values not applied: %+v", cfg)
	}
}

func TestStartMasterAppliesOptions(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0",
		WithTaskTimeout(42*time.Second), WithSpeculativeFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.taskTimeout != 42*time.Second {
		t.Errorf("taskTimeout %v, want 42s", m.taskTimeout)
	}
	if m.specFraction != 0.75 {
		t.Errorf("specFraction %v, want 0.75", m.specFraction)
	}
}

func TestSubmitCtxAbortsOnCancel(t *testing.T) {
	// No workers: the job would sit in the map phase forever without the
	// deadline firing.
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	input := workloads.GenerateText(8*units.KB, 3)
	_, err = m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 2*1024)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aborted submit: %v, want wrapped context.DeadlineExceeded", err)
	}

	// The abort must return the master to idle so the next job can run.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := ConnectWorker("retry-"+strconv.Itoa(i), m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}()
		defer w.Close()
	}
	if _, err := m.Submit(JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 2*1024); err != nil {
		t.Fatalf("submit after aborted job: %v", err)
	}
	wg.Wait()
}

func TestSubmitCtxSentinels(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()

	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 0}, []byte("x"), 8); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("zero reducers: %v, want wrapped ErrInvalidJob", err)
	}
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "no-such", NumReducers: 1}, []byte("x"), 8); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("unknown workload: %v, want wrapped ErrInvalidJob", err)
	}
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, nil, 8); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty input: %v, want wrapped ErrEmptyInput", err)
	}
	m.Close()
	if _, err := m.SubmitCtx(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, []byte("x y"), 8); !errors.Is(err, ErrMasterClosed) {
		t.Errorf("closed master: %v, want wrapped ErrMasterClosed", err)
	}
}

func TestDistJobEmitsObserverEvents(t *testing.T) {
	c := obs.NewCollector()
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second), WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := ConnectWorker("obs-"+strconv.Itoa(i), m.Addr(), WithObserver(c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}()
		defer w.Close()
	}

	input := workloads.GenerateText(16*units.KB, 7)
	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 4*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if n := c.SpanCount("dist.submit"); n != 1 {
		t.Errorf("dist.submit span count %d, want 1", n)
	}
	want := int64(res.Counters.MapTasks + res.Counters.ReduceTasks)
	if n := c.SpanCount("dist.task"); n < want {
		t.Errorf("dist.task span count %d, want >= %d", n, want)
	}
	snap := c.Snapshot()
	if p := snap.Progress["dist.map"]; p.Done != p.Total || p.Total != res.Counters.MapTasks {
		t.Errorf("dist.map progress %+v, want %d/%d", p, res.Counters.MapTasks, res.Counters.MapTasks)
	}
	if p := snap.Progress["dist.reduce"]; p.Done != p.Total || p.Total != res.Counters.ReduceTasks {
		t.Errorf("dist.reduce progress %+v, want %d/%d", p, res.Counters.ReduceTasks, res.Counters.ReduceTasks)
	}
}

func TestReportFailureSurfacesRPCErrors(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := obs.NewCollector()
	w, err := ConnectWorker("rf", m.Addr(), WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}

	// Sever the connection, then fail a task: the failure report cannot
	// reach the master, and that delivery error must be counted instead of
	// dropped.
	if err := w.client.Close(); err != nil {
		t.Fatal(err)
	}
	w.reportFailure(Task{Kind: TaskMap, Seq: 1}, errors.New("synthetic task failure"))
	if n := w.ReportErrors(); n != 1 {
		t.Errorf("ReportErrors() = %d, want 1", n)
	}
	if n := c.Counter("dist.worker.report_errors"); n != 1 {
		t.Errorf("report_errors counter = %d, want 1", n)
	}
}
