package dist

// handle.go is the asynchronous submission API: Submit returns a
// JobHandle immediately and the job runs in the master's scheduler
// alongside every other admitted job. The handle is the only object a
// client needs — identity, completion wait, live status, cancellation —
// and it stays valid after the job leaves the master's active tables.

import (
	"context"
	"fmt"

	"heterohadoop/internal/mapreduce"
)

// JobHandle is a client's reference to one submitted job. Handles are
// cheap value-like references: copyable, safe for concurrent use, and
// valid for the life of the process that holds them (the underlying job
// state is pinned by the handle even after the master retires the job).
type JobHandle struct {
	m  *Master
	js *jobState
}

// ID returns the job's master-assigned identity ("job-<n>"), stable
// across a master snapshot restart.
func (h *JobHandle) ID() string { return h.js.id }

// Done returns a channel closed when the job reaches a terminal state
// (done, failed or cancelled) — select on it alongside other work.
func (h *JobHandle) Done() <-chan struct{} { return h.js.doneCh }

// Wait blocks until the job completes and returns its result, or the
// job's error if it failed or was cancelled. A cancelled ctx abandons the
// wait — it does NOT cancel the job (use Cancel for that), so several
// clients can wait on one handle and an impatient one leaving does not
// kill the job for the rest.
func (h *JobHandle) Wait(ctx context.Context) (*mapreduce.Result, error) {
	select {
	case <-h.js.doneCh:
		return h.result()
	case <-ctx.Done():
		return nil, fmt.Errorf("dist: wait for job %s abandoned: %w", h.js.id, ctx.Err())
	}
}

// result reads the terminal outcome; only call after doneCh is closed
// (the close is the happens-before edge for result/err).
func (h *JobHandle) result() (*mapreduce.Result, error) {
	if h.js.err != nil {
		return nil, h.js.err
	}
	return h.js.result, nil
}

// Status returns the job's point-in-time status snapshot.
func (h *JobHandle) Status() JobStatus {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.m.jobStatusLocked(h.js)
}

// Cancel aborts the job: undispatched tasks are dropped, workers polling
// for it are turned away, in-flight completions become stale, and Wait
// returns an error wrapping ErrJobCancelled. Cancelling a finished job is
// a no-op.
func (h *JobHandle) Cancel() {
	h.m.abortJob(h.js, ErrJobCancelled)
}
