package dist

// snapshot.go is the master's crash-recovery persistence: a versioned gob
// snapshot of every queued and running job (descriptors, split input,
// task completion state, the shuffle publication log, buffered reduce
// outputs), the epoch/job counters and the worker registry, written
// atomically (temp file + rename) on every state mutation and loaded by
// StartMaster when WithSnapshotPath names an existing file. A restarted
// master resumes in-flight jobs where they stood: completed inline work
// is kept, assignments are cleared for re-dispatch, and served segments
// whose workers died with the master are recovered through the normal
// loss-report path when reducers fail to fetch them.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"heterohadoop/internal/mapreduce"
)

// snapshotVersion is bumped on any incompatible layout change; a loaded
// snapshot with a different version is rejected (the operator removes the
// stale file) rather than misread.
const snapshotVersion = 1

// snapTask is one map task's persistent state (reduce tasks persist only
// their done flag — their inputs are the publication log).
type snapTask struct {
	Done      bool
	Owner     string
	OwnerAddr string
	Split     []byte
}

// snapJob is one active job's persistent state.
type snapJob struct {
	ID            string
	Epoch         uint64
	Desc          JobDescriptor
	BlockSize     int
	State         string
	Phase         string
	MapTasks      []snapTask
	PartSegs      [][]TaggedSegment
	RedDone       []bool
	RedOutputs    [][]byte
	Counters      mapreduce.Counters
	Reassigned    int
	Speculative   int
	EarlyReduces  int
	RecoveredMaps int
	SubmittedAt   time.Time
}

// snapshot is the full persistent master state.
type snapshot struct {
	Version int
	Epoch   uint64
	JobSeq  uint64
	Jobs    []snapJob
	History []JobStatus
	Workers []workerInfo
}

// saveSnapshotLocked persists the master state when snapshots are
// enabled; called under m.mu after every mutation that must survive a
// restart (submission, completion, invalidation, eviction, retirement).
// Write errors are surfaced through the observer rather than failing the
// mutation — a master that cannot persist keeps serving.
func (m *Master) saveSnapshotLocked() {
	if m.snapPath == "" {
		return
	}
	snap := snapshot{Version: snapshotVersion, Epoch: m.epoch, JobSeq: m.jobSeq}
	for _, js := range m.order {
		sj := snapJob{
			ID: js.id, Epoch: js.epoch, Desc: js.desc, BlockSize: js.blockSize,
			State: js.state, Phase: js.phase,
			PartSegs: js.partSegs, RedOutputs: js.redOutputs,
			Counters: js.counters, Reassigned: js.reassigned,
			Speculative: js.speculative, EarlyReduces: js.earlyReduces,
			RecoveredMaps: js.recoveredMaps, SubmittedAt: js.submittedAt,
		}
		sj.MapTasks = make([]snapTask, len(js.mapTasks))
		for i, ts := range js.mapTasks {
			sj.MapTasks[i] = snapTask{
				Done: ts.done, Owner: ts.owner, OwnerAddr: ts.ownerAddr,
				Split: ts.task.SplitData,
			}
		}
		sj.RedDone = make([]bool, len(js.redTasks))
		for i, ts := range js.redTasks {
			sj.RedDone[i] = ts.done
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	snap.History = append([]JobStatus(nil), m.history...)
	for _, w := range m.workers.workers {
		snap.Workers = append(snap.Workers, *w)
	}
	if err := writeSnapshot(m.snapPath, &snap); err != nil {
		m.ob.Count("dist.snapshot.errors", 1)
	} else {
		m.ob.Count("dist.snapshot.writes", 1)
	}
}

// writeSnapshot gob-encodes the snapshot to a temp file beside path and
// renames it into place, so readers never observe a torn write.
func writeSnapshot(path string, snap *snapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadSnapshot reads a snapshot file; a missing file is (nil, nil).
func loadSnapshot(path string) (*snapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot open: %w", err)
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dist: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("dist: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	return &snap, nil
}

// restoreLocked rebuilds the master's job tables from a snapshot; called
// from StartMaster before the RPC plane accepts connections. Every
// restored assignment is cleared (the assignees are gone or must
// re-poll), so the scheduler re-dispatches outstanding work; completed
// inline state — done maps with master-held segments, finished reduce
// outputs — resumes as done.
func (m *Master) restoreLocked(snap *snapshot) {
	m.epoch = snap.Epoch
	m.jobSeq = snap.JobSeq
	m.history = append(m.history, snap.History...)
	now := time.Now()
	for _, w := range snap.Workers {
		// Restored workers start evicted-but-known: a live one re-polls
		// within its heartbeat and rejoins; a dead one never counts as
		// live and its served segments recover through loss reports.
		m.workers.workers[w.ID] = &workerInfo{ID: w.ID, Addr: w.Addr, LastSeen: now, Evicted: true}
	}
	for _, sj := range snap.Jobs {
		chunks := make([][]byte, len(sj.MapTasks))
		for i := range sj.MapTasks {
			chunks[i] = sj.MapTasks[i].Split
		}
		js := newJobState(sj.ID, sj.Epoch, sj.Desc, sj.BlockSize, chunks, m.defaults, sj.SubmittedAt)
		js.phase = sj.Phase
		js.state = JobQueued // promoteLocked re-admits up to the cap
		js.partSegs = sj.PartSegs
		if js.partSegs == nil {
			js.partSegs = make([][]TaggedSegment, sj.Desc.NumReducers)
		}
		js.redOutputs = sj.RedOutputs
		if js.redOutputs == nil {
			js.redOutputs = make([][]byte, sj.Desc.NumReducers)
		}
		js.counters = sj.Counters
		js.reassigned = sj.Reassigned
		js.speculative = sj.Speculative
		js.earlyReduces = sj.EarlyReduces
		js.recoveredMaps = sj.RecoveredMaps
		for i, st := range sj.MapTasks {
			ts := js.mapTasks[i]
			ts.done = st.Done
			ts.owner = st.Owner
			ts.ownerAddr = st.OwnerAddr
			if st.Done {
				js.mapsLeft--
			}
		}
		for i, done := range sj.RedDone {
			if i < len(js.redTasks) && done {
				js.redTasks[i].done = true
				js.redsLeft--
			}
		}
		m.jobs[js.id] = js
		m.byEpoch[js.epoch] = js
		m.order = append(m.order, js)
	}
	m.promoteLocked()
}
