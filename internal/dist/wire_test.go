package dist

// wire_test.go pins the binary segment wire format the distributed runtime
// ships in MapDone.Parts, TaggedSegment.Data and ReduceDone.Output: every
// record shape must round-trip exactly (including the zero-record blob an
// empty partition publishes as a coverage marker), header-only SegmentStats
// must agree with the decoded segment, and corrupt blobs must be rejected
// rather than mis-framed. BenchmarkSegmentEncode measures the format
// against the gob []KV encoding it replaced.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func TestSegmentWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		kvs  []mapreduce.KV
	}{
		{"empty partition", nil},
		{"single record", []mapreduce.KV{{Key: "k", Value: "v"}}},
		{"empty key", []mapreduce.KV{{Key: "", Value: "v"}}},
		{"empty value", []mapreduce.KV{{Key: "k", Value: ""}}},
		{"empty key and value", []mapreduce.KV{{Key: "", Value: ""}}},
		{"multi-KB key", []mapreduce.KV{{Key: strings.Repeat("K", 64*1024), Value: "v"}}},
		{"non-UTF8 bytes", []mapreduce.KV{{Key: "\xff\xfe\x80", Value: "\x00\xc3\x28"}}},
		{"duplicate keys", []mapreduce.KV{{Key: "d", Value: "1"}, {Key: "d", Value: "2"}, {Key: "d", Value: "3"}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seg := mapreduce.SegmentFromKVs(tc.kvs)
			blob := mapreduce.EncodeSegment(seg)
			if got := seg.EncodedSize(); got != len(blob) {
				t.Fatalf("EncodedSize = %d, encoded blob is %d bytes", got, len(blob))
			}

			nrecs, acct, err := mapreduce.SegmentStats(blob)
			if err != nil {
				t.Fatalf("SegmentStats: %v", err)
			}
			if nrecs != len(tc.kvs) {
				t.Fatalf("SegmentStats nrecs = %d, want %d", nrecs, len(tc.kvs))
			}
			if acct != seg.Bytes() {
				t.Fatalf("SegmentStats bytes = %d, Segment.Bytes = %d", acct, seg.Bytes())
			}
			var kvBytes units.Bytes
			for _, kv := range tc.kvs {
				kvBytes += kv.Bytes()
			}
			if acct != kvBytes {
				t.Fatalf("SegmentStats bytes = %d, sum of KV.Bytes = %d", acct, kvBytes)
			}

			dec, err := mapreduce.DecodeSegment(blob)
			if err != nil {
				t.Fatalf("DecodeSegment: %v", err)
			}
			if dec.Len() != len(tc.kvs) {
				t.Fatalf("decoded Len = %d, want %d", dec.Len(), len(tc.kvs))
			}
			got := dec.KVs()
			if len(tc.kvs) == 0 {
				if got != nil {
					t.Fatalf("decoded empty segment yields %d records", len(got))
				}
				return
			}
			if !reflect.DeepEqual(got, tc.kvs) {
				t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, tc.kvs)
			}
		})
	}
}

// TestSegmentWireEmptyPartitionMarker pins the coverage-marker contract:
// an empty partition's blob is exactly the 8-byte header, decodes to the
// zero segment, and reports zero accounting bytes.
func TestSegmentWireEmptyPartitionMarker(t *testing.T) {
	blob := mapreduce.EncodeSegment(mapreduce.Segment{})
	if len(blob) != 8 {
		t.Fatalf("empty segment encodes to %d bytes, want the 8-byte header", len(blob))
	}
	nrecs, acct, err := mapreduce.SegmentStats(blob)
	if err != nil || nrecs != 0 || acct != 0 {
		t.Fatalf("SegmentStats(empty) = (%d, %d, %v), want (0, 0, nil)", nrecs, acct, err)
	}
	seg, err := mapreduce.DecodeSegment(blob)
	if err != nil || seg.Len() != 0 {
		t.Fatalf("DecodeSegment(empty) = (Len %d, %v), want the zero segment", seg.Len(), err)
	}
}

// TestSegmentWireRejectsCorruptBlobs checks that framing damage surfaces
// as a decode error instead of silently mis-parsed records.
func TestSegmentWireRejectsCorruptBlobs(t *testing.T) {
	good := mapreduce.EncodeSegment(mapreduce.SegmentFromKVs([]mapreduce.KV{
		{Key: "alpha", Value: "1"}, {Key: "beta", Value: "2"},
	}))
	corrupt := map[string][]byte{
		"truncated header":  good[:4],
		"truncated meta":    good[:10],
		"truncated payload": good[:len(good)-3],
		"trailing garbage":  append(append([]byte(nil), good...), 0xEE),
		"length mismatch": func() []byte {
			b := append([]byte(nil), good...)
			b[8]++ // first record's key length no longer sums to the payload length
			return b
		}(),
	}
	for name, blob := range corrupt {
		if _, err := mapreduce.DecodeSegment(blob); err == nil {
			t.Errorf("%s: DecodeSegment accepted a corrupt blob", name)
		}
		if name != "length mismatch" { // stats reads the header only
			if _, _, err := mapreduce.SegmentStats(blob); err == nil {
				t.Errorf("%s: SegmentStats accepted a corrupt blob", name)
			}
		}
	}
}

// benchKVs builds a realistic shuffle partition: wordcount records over
// Zipf text.
func benchKVs(b *testing.B) []mapreduce.KV {
	b.Helper()
	var kvs []mapreduce.KV
	for _, line := range strings.Split(string(workloads.GenerateText(256*units.KB, 11)), "\n") {
		for _, w := range strings.Fields(line) {
			kvs = append(kvs, mapreduce.KV{Key: w, Value: "1"})
		}
	}
	if len(kvs) == 0 {
		b.Fatal("no benchmark records generated")
	}
	return kvs
}

// BenchmarkSegmentEncode compares a shuffle segment's round trip through
// the binary wire format against the gob []KV encoding the runtime used
// before: gob reflects over every record and allocates two string headers
// per KV on decode, the binary form decodes zero-copy.
func BenchmarkSegmentEncode(b *testing.B) {
	kvs := benchKVs(b)
	seg := mapreduce.SegmentFromKVs(kvs)

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(seg.EncodedSize()))
		for i := 0; i < b.N; i++ {
			blob := mapreduce.EncodeSegment(seg)
			dec, err := mapreduce.DecodeSegment(blob)
			if err != nil {
				b.Fatal(err)
			}
			if dec.Len() != len(kvs) {
				b.Fatalf("decoded %d records, want %d", dec.Len(), len(kvs))
			}
		}
	})

	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(seg.EncodedSize()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(kvs); err != nil {
				b.Fatal(err)
			}
			var dec []mapreduce.KV
			if err := gob.NewDecoder(&buf).Decode(&dec); err != nil {
				b.Fatal(err)
			}
			if len(dec) != len(kvs) {
				b.Fatalf("decoded %d records, want %d", len(dec), len(kvs))
			}
		}
	})
}
