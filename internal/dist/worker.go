package dist

import (
	"context"
	"fmt"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
)

// Worker executes tasks for a master. One Worker runs one polling loop;
// start several for a multi-slot node.
type Worker struct {
	// ID identifies the worker in the master's tables.
	ID string
	// PollInterval is the idle poll spacing (the heartbeat period).
	PollInterval time.Duration

	registry *Registry
	client   *rpc.Client
	ob       obs.Observer

	mu      sync.Mutex
	stopped bool
	// tasksRun counts completed task attempts (observability/tests).
	tasksRun int
	// reportErrors counts failure reports that themselves failed to reach
	// the master over RPC.
	reportErrors int

	// bg tracks in-flight streaming reduce attempts. Reduce tasks run in
	// the background so the polling loop keeps serving map tasks while the
	// reducer waits for the shuffle to complete — with synchronous reduces a
	// single worker would deadlock, holding a reduce that can never finish
	// because the remaining maps are never polled for.
	bg sync.WaitGroup
	// bgErr is the first hard error hit by a background reduce; it stops
	// the worker and is returned when the polling loop exits.
	bgErr error
}

// NewWorker dials the master and returns a ready worker.
//
// Deprecated: use ConnectWorker with options; this wrapper remains for
// source compatibility with the positional API.
func NewWorker(id, masterAddr string) (*Worker, error) {
	return ConnectWorker(id, masterAddr)
}

// ConnectWorker dials the master and returns a ready worker, configured by
// functional options: WithPollInterval sets the idle heartbeat period and
// WithObserver attaches telemetry (dist.task spans, failure-report
// counters).
func ConnectWorker(id, masterAddr string, opts ...Option) (*Worker, error) {
	if id == "" {
		return nil, fmt.Errorf("dist: worker needs an id")
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s dial: %w", id, err)
	}
	return &Worker{
		ID:           id,
		PollInterval: cfg.pollInterval,
		registry:     NewRegistry(),
		client:       client,
		ob:           cfg.observer,
	}, nil
}

// Registry exposes the worker-side job registry for custom registrations.
func (w *Worker) Registry() *Registry { return w.registry }

// TasksRun reports how many task attempts this worker completed.
func (w *Worker) TasksRun() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasksRun
}

// ReportErrors reports how many task-failure reports could not be
// delivered to the master (the RPC itself failed). The master's timeout
// path still recovers the task; the counter surfaces the degraded
// signalling that used to be dropped silently.
func (w *Worker) ReportErrors() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reportErrors
}

// Stop makes the polling loop exit after the current task.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// reportFailure tells the master to requeue a task this worker could not
// run. Delivery is best-effort — the master's timeout path covers a lost
// report — but a failed report is no longer dropped silently: it is
// counted (ReportErrors) and surfaced through the observer.
func (w *Worker) reportFailure(task Task, cause error) {
	err := w.client.Call("Master.ReportFailure", TaskFailed{
		WorkerID: w.ID, Epoch: task.Epoch, Kind: task.Kind, Seq: task.Seq, Reason: cause.Error(),
	}, &Ack{})
	if err != nil {
		w.mu.Lock()
		w.reportErrors++
		w.mu.Unlock()
		w.ob.Count("dist.worker.report_errors", 1)
	}
}

// Close tears down the connection.
func (w *Worker) Close() error {
	w.Stop()
	return w.client.Close()
}

func (w *Worker) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

// Run polls the master for tasks and executes them until the master
// reports the job done or Stop is called. It returns the first hard error
// (task execution errors are hard: the job cannot succeed with a broken
// factory). It is RunCtx with a background context.
func (w *Worker) Run() error { return w.run(context.Background(), false) }

// RunCtx is Run with cancellation: a cancelled context stops the loop at
// the next poll or idle sleep with an error wrapping ctx.Err().
func (w *Worker) RunCtx(ctx context.Context) error { return w.run(ctx, false) }

// RunForever is the daemon mode: the worker keeps polling across jobs,
// treating an idle master as "wait", until Stop is called. It is
// RunForeverCtx with a background context.
func (w *Worker) RunForever() error { return w.run(context.Background(), true) }

// RunForeverCtx is RunForever with cancellation.
func (w *Worker) RunForeverCtx(ctx context.Context) error { return w.run(ctx, true) }

func (w *Worker) run(ctx context.Context, persistent bool) error {
	// Background reduces terminate on their own within a poll interval of
	// any exit condition (stop, cancellation, closed connection, stale
	// epoch); wait for them so no attempt outlives Run.
	defer w.bg.Wait()
	for !w.isStopped() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dist: worker %s: cancelled: %w", w.ID, err)
		}
		var task Task
		if err := w.client.Call("Master.GetTask", GetTaskArgs{WorkerID: w.ID}, &task); err != nil {
			if w.isStopped() {
				break // Close raced with the poll: clean shutdown
			}
			return fmt.Errorf("dist: worker %s poll: %w", w.ID, err)
		}
		switch task.Kind {
		case TaskDone:
			if persistent {
				if err := w.idle(ctx); err != nil {
					return err
				}
				continue
			}
			w.bg.Wait()
			return w.takeBgErr()
		case TaskWait:
			if err := w.idle(ctx); err != nil {
				return err
			}
		case TaskMap:
			if err := w.runMap(task); err != nil {
				if w.isStopped() {
					break
				}
				return err
			}
		case TaskReduce:
			// Streamed in the background: the fetch loop may have to wait
			// for the tail of the map wave, and this polling loop is what
			// runs those maps.
			w.bg.Add(1)
			go w.runReduceBg(ctx, task)
		default:
			return fmt.Errorf("dist: worker %s: unknown task kind %q", w.ID, task.Kind)
		}
	}
	w.bg.Wait()
	return w.takeBgErr()
}

// takeBgErr returns the first background-reduce error, if any.
func (w *Worker) takeBgErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bgErr
}

// idle sleeps one poll interval, waking early on cancellation.
func (w *Worker) idle(ctx context.Context) error {
	timer := time.NewTimer(w.PollInterval)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("dist: worker %s: cancelled: %w", w.ID, ctx.Err())
	case <-timer.C:
		return nil
	}
}

// taskSpan opens a dist.task span for one attempt when the observer is
// enabled; the returned span is inert otherwise. The attrs carry the full
// attempt identity — job, kind, seq, worker, epoch — so concurrent attempts
// of the same task (speculative re-execution, post-timeout reissue) stay
// distinguishable in a trace.
func (w *Worker) taskSpan(task Task) obs.Span {
	if !w.ob.Enabled() {
		return obs.Span{}
	}
	return obs.Start(w.ob, "dist.task",
		obs.Str("job", task.Job.Workload),
		obs.Str("kind", task.Kind),
		obs.Int("seq", int64(task.Seq)),
		obs.Str("worker", w.ID),
		obs.Int("epoch", int64(task.Epoch)))
}

// taskRef is the phase-event identity of one task attempt on this worker.
func (w *Worker) taskRef(task Task) obs.TaskRef {
	kind := obs.KindMap
	if task.Kind == TaskReduce {
		kind = obs.KindReduce
	}
	return obs.TaskRef{
		Job: task.Job.Workload, Kind: kind, Index: task.Seq, Worker: w.ID, Epoch: task.Epoch,
	}
}

func (w *Worker) runMap(task Task) error {
	sp := w.taskSpan(task)
	defer sp.End()
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	ref := w.taskRef(task)
	pc := obs.NewPhaseClock(w.ob, ref)
	segs, counters, err := mapreduce.ExecuteMapSplitObs(job, task.SplitData, task.NParts, ref, w.ob)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s map %d: %w", w.ID, task.Seq, err)
	}
	// Encode every partition — empties included, as 8-byte coverage
	// markers — and report which ones actually hold records, so the master
	// can publish the segments to early-dispatched reducers without
	// rescanning the payload.
	tWrite := pc.Start()
	parts := make([][]byte, len(segs))
	nonEmpty := make([]int, 0, len(segs))
	for p, seg := range segs {
		parts[p] = mapreduce.EncodeSegment(seg)
		if seg.Len() > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	pc.Emit(obs.PhaseWrite, tWrite)
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	return w.client.Call("Master.CompleteMap", MapDone{
		WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq, Parts: parts, NonEmpty: nonEmpty, Counters: counters,
	}, &Ack{})
}

// runReduceBg runs one streaming reduce attempt in the background. A hard
// error is recorded and stops the worker; the polling loop returns it.
func (w *Worker) runReduceBg(ctx context.Context, task Task) {
	defer w.bg.Done()
	sp := w.taskSpan(task)
	defer sp.End()
	if err := w.runReduceStreaming(ctx, task); err != nil {
		w.mu.Lock()
		// An error after Stop/Close is shutdown fallout (closed connection),
		// not a task failure — the same suppression the synchronous task
		// paths apply.
		if !w.stopped && w.bgErr == nil {
			w.bgErr = err
		}
		w.stopped = true
		w.mu.Unlock()
	}
}

// runReduceStreaming fetches the task's partition segments from the master
// as the map wave publishes them, then merges and reduces once the shuffle
// is complete. A Stale reply or cancellation abandons the attempt quietly
// (the job is gone, or the loop owner reports the cancellation).
func (w *Worker) runReduceStreaming(ctx context.Context, task Task) error {
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	ref := w.taskRef(task)
	pc := obs.NewPhaseClock(w.ob, ref)
	// The fetch loop is the distributed shuffle transport: time spent here —
	// including waits for the tail of the map wave — lands in the same
	// merge-fetch bucket the in-process collector charges its merges to.
	tFetch := pc.Start()
	var segs []TaggedSegment
	cursor := 0
	for {
		if w.isStopped() || ctx.Err() != nil {
			return nil
		}
		var reply FetchSegmentsReply
		err := w.client.Call("Master.FetchSegments", FetchSegmentsArgs{
			WorkerID: w.ID, Epoch: task.Epoch, Partition: task.Partition, Cursor: cursor,
		}, &reply)
		if err != nil {
			if w.isStopped() {
				return nil
			}
			return fmt.Errorf("dist: worker %s reduce %d fetch: %w", w.ID, task.Seq, err)
		}
		if reply.Stale {
			return nil
		}
		segs = append(segs, reply.Segments...)
		cursor = reply.Cursor
		if reply.Complete {
			break
		}
		if len(reply.Segments) == 0 {
			// Nothing new: wait a heartbeat for more maps to finish.
			timer := time.NewTimer(w.PollInterval)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil
			case <-timer.C:
			}
		}
	}
	pc.Emit(obs.PhaseMergeFetch, tFetch)
	// Restore map-task order — the order the engine's stable merge is
	// defined over — regardless of fetch interleaving, then decode the
	// blobs (zero-copy: the record payload aliases the received buffers).
	sort.Slice(segs, func(i, j int) bool { return segs[i].MapSeq < segs[j].MapSeq })
	parts := make([]mapreduce.Segment, 0, len(segs))
	for _, s := range segs {
		seg, err := mapreduce.DecodeSegment(s.Data)
		if err != nil {
			w.reportFailure(task, err)
			return fmt.Errorf("dist: worker %s reduce %d decode map-%d segment: %w", w.ID, task.Seq, s.MapSeq, err)
		}
		parts = append(parts, seg)
	}
	out, counters, err := mapreduce.ExecuteReduceSegObs(job, parts, ref, w.ob)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s reduce %d: %w", w.ID, task.Seq, err)
	}
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	tWrite := pc.Start()
	// The reducer's output is already a flat segment; encoding it is a
	// header write plus one payload copy — no []KV round-trip.
	blob := mapreduce.EncodeSegment(out)
	pc.Emit(obs.PhaseWrite, tWrite)
	return w.client.Call("Master.CompleteReduce", ReduceDone{
		WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq, Partition: task.Partition,
		Output: blob, Counters: counters,
	}, &Ack{})
}
