package dist

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"heterohadoop/internal/mapreduce"
)

// Worker executes tasks for a master. One Worker runs one polling loop;
// start several for a multi-slot node.
type Worker struct {
	// ID identifies the worker in the master's tables.
	ID string
	// PollInterval is the idle poll spacing (the heartbeat period).
	PollInterval time.Duration

	registry *Registry
	client   *rpc.Client

	mu      sync.Mutex
	stopped bool
	// TasksRun counts completed task attempts (observability/tests).
	tasksRun int
}

// NewWorker dials the master and returns a ready worker.
func NewWorker(id, masterAddr string) (*Worker, error) {
	if id == "" {
		return nil, fmt.Errorf("dist: worker needs an id")
	}
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s dial: %w", id, err)
	}
	return &Worker{
		ID:           id,
		PollInterval: 10 * time.Millisecond,
		registry:     NewRegistry(),
		client:       client,
	}, nil
}

// Registry exposes the worker-side job registry for custom registrations.
func (w *Worker) Registry() *Registry { return w.registry }

// TasksRun reports how many task attempts this worker completed.
func (w *Worker) TasksRun() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasksRun
}

// Stop makes the polling loop exit after the current task.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// reportFailure tells the master to requeue a task this worker could not
// run; best-effort (the timeout path covers a lost report).
func (w *Worker) reportFailure(task Task, cause error) {
	_ = w.client.Call("Master.ReportFailure", TaskFailed{
		WorkerID: w.ID, Kind: task.Kind, Seq: task.Seq, Reason: cause.Error(),
	}, &Ack{})
}

// Close tears down the connection.
func (w *Worker) Close() error {
	w.Stop()
	return w.client.Close()
}

func (w *Worker) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

// Run polls the master for tasks and executes them until the master
// reports the job done or Stop is called. It returns the first hard error
// (task execution errors are hard: the job cannot succeed with a broken
// factory).
func (w *Worker) Run() error { return w.run(false) }

// RunForever is the daemon mode: the worker keeps polling across jobs,
// treating an idle master as "wait", until Stop is called.
func (w *Worker) RunForever() error { return w.run(true) }

func (w *Worker) run(persistent bool) error {
	for !w.isStopped() {
		var task Task
		if err := w.client.Call("Master.GetTask", GetTaskArgs{WorkerID: w.ID}, &task); err != nil {
			if w.isStopped() {
				return nil // Close raced with the poll: clean shutdown
			}
			return fmt.Errorf("dist: worker %s poll: %w", w.ID, err)
		}
		switch task.Kind {
		case TaskDone:
			if persistent {
				time.Sleep(w.PollInterval)
				continue
			}
			return nil
		case TaskWait:
			time.Sleep(w.PollInterval)
		case TaskMap:
			if err := w.runMap(task); err != nil {
				if w.isStopped() {
					return nil
				}
				return err
			}
		case TaskReduce:
			if err := w.runReduce(task); err != nil {
				if w.isStopped() {
					return nil
				}
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: unknown task kind %q", w.ID, task.Kind)
		}
	}
	return nil
}

func (w *Worker) runMap(task Task) error {
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	parts, counters, err := mapreduce.ExecuteMapSplit(job, task.SplitData, task.NParts)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s map %d: %w", w.ID, task.Seq, err)
	}
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	return w.client.Call("Master.CompleteMap", MapDone{
		WorkerID: w.ID, Seq: task.Seq, Parts: parts, Counters: counters,
	}, &Ack{})
}

func (w *Worker) runReduce(task Task) error {
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	out, counters, err := mapreduce.ExecuteReduce(job, task.Segments)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s reduce %d: %w", w.ID, task.Seq, err)
	}
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	return w.client.Call("Master.CompleteReduce", ReduceDone{
		WorkerID: w.ID, Seq: task.Seq, Partition: task.Partition, Output: out, Counters: counters,
	}, &Ack{})
}
