package dist

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
)

// Worker executes tasks for a master. One Worker runs one polling loop;
// start several for a multi-slot node.
//
// By default the worker serves its own map output (worker-served shuffle,
// the way Hadoop map output stays on the mapper's node): completed map
// segments stay in a local store and reducers pull them from the worker's
// shuffle server directly, with only address references passing through
// the master. WithShuffleServing(false) restores inline shipping.
type Worker struct {
	// ID identifies the worker in the master's tables.
	ID string
	// PollInterval is the idle poll spacing (the heartbeat period).
	PollInterval time.Duration

	registry *Registry
	client   *rpc.Client
	ob       obs.Observer
	// class is the declared core class (WithCoreClass): stamped on every
	// phase event and reported in each poll, "" when undeclared.
	class string

	// Worker-served shuffle plane: shuffleAddr is "" when serving is off
	// (inline shipping); otherwise the store holds this worker's map output
	// and shuffleLn accepts reducers' Shuffle.Fetch calls.
	shuffleLn   net.Listener
	shuffleAddr string
	store       *shuffleStore
	// spillDir is this worker's out-of-core map-output directory
	// (WithSpillDir), "" for the in-memory store; removed on Close.
	spillDir string
	// spillSeq uniquifies spill-file names across re-executions of the same
	// map seq (guarded by mu).
	spillSeq int

	mu      sync.Mutex
	stopped bool
	// peers caches RPC clients to other workers' shuffle servers, dropped
	// on call failure.
	peers map[string]*rpc.Client
	// tasksRun counts completed task attempts (observability/tests).
	tasksRun int
	// reportErrors counts failure/loss reports that themselves failed to
	// reach the master over RPC.
	reportErrors int

	// bg tracks in-flight streaming reduce attempts. Reduce tasks run in
	// the background so the polling loop keeps serving map tasks while the
	// reducer waits for the shuffle to complete — with synchronous reduces a
	// single worker would deadlock, holding a reduce that can never finish
	// because the remaining maps are never polled for.
	bg sync.WaitGroup
	// bgErr is the first hard error hit by a background reduce; it stops
	// the worker and is returned when the polling loop exits.
	bgErr error
}

// storedOutput is one map task's stored output: either resident
// per-partition encoded segment blobs (the default) or a disk-backed
// segment file (WithSpillDir workers) served frame by frame.
type storedOutput struct {
	parts [][]byte
	file  *mapreduce.SegmentFile
}

// shuffleStore holds a serving worker's map output: epoch → map Seq →
// stored output. It has its own lock because the shuffle server's fetch
// goroutines race the polling loop; disk reads happen outside the lock
// (SegmentFile handles are goroutine-safe).
type shuffleStore struct {
	mu      sync.Mutex
	byEpoch map[uint64]map[int]storedOutput

	// Frame readahead for disk-backed serving: after frame k of a
	// partition is served, frame k+1 is read and CRC-validated in the
	// background, so a reducer's cursor walking the partition finds its
	// next fetch already resident — the disk read overlaps the network
	// round trip instead of sitting on it. Small FIFO-bounded keyed
	// cache (at most shufflePrefetchCap ~1 MB frames); misses fall
	// through to ReadFrame, and read failures are never cached (the
	// serving path must observe corruption itself and answer as loss).
	pmu      sync.Mutex
	prefetch map[frameKey][]byte
	porder   []frameKey
}

// frameKey identifies one served disk frame in the readahead cache.
type frameKey struct {
	epoch  uint64
	mapSeq int
	part   int
	frame  int
}

// shufflePrefetchCap bounds the readahead cache's entry count.
const shufflePrefetchCap = 16

func newShuffleStore() *shuffleStore {
	return &shuffleStore{byEpoch: make(map[uint64]map[int]storedOutput)}
}

// cacheTake removes and returns a prefetched frame. Frames are consumed at
// most once — a cursor fetches each frame exactly once, so leaving entries
// behind would only delay eviction.
func (s *shuffleStore) cacheTake(k frameKey) ([]byte, bool) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	b, ok := s.prefetch[k]
	if ok {
		delete(s.prefetch, k)
	}
	return b, ok
}

// cachePut inserts a prefetched frame, evicting oldest-inserted entries
// past the cap. Stale order entries (already consumed) are skipped.
func (s *shuffleStore) cachePut(k frameKey, b []byte) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.prefetch == nil {
		s.prefetch = make(map[frameKey][]byte)
	}
	if _, dup := s.prefetch[k]; dup {
		return
	}
	for len(s.prefetch) >= shufflePrefetchCap && len(s.porder) > 0 {
		old := s.porder[0]
		s.porder = s.porder[1:]
		delete(s.prefetch, old)
	}
	s.prefetch[k] = b
	s.porder = append(s.porder, k)
}

func (s *shuffleStore) put(epoch uint64, mapSeq int, parts [][]byte) {
	s.set(epoch, mapSeq, storedOutput{parts: parts})
}

func (s *shuffleStore) putFile(epoch uint64, mapSeq int, sf *mapreduce.SegmentFile) {
	s.set(epoch, mapSeq, storedOutput{file: sf})
}

func (s *shuffleStore) set(epoch uint64, mapSeq int, out storedOutput) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byEpoch[epoch]
	if e == nil {
		e = make(map[int]storedOutput)
		s.byEpoch[epoch] = e
	}
	// A re-executed attempt replaces the entry; release the superseded spill
	// file (names are uniquified, so the new file is never the old path).
	if old, ok := e[mapSeq]; ok && old.file != nil {
		old.file.Remove()
	}
	e[mapSeq] = out
}

// getFrame hands out one fetchable unit of a stored map output: the whole
// partition blob for resident output (frame 0 only), or frame `frame` of
// the partition for disk-backed output, with more reporting whether frames
// remain. ok is false for anything this worker cannot serve — unknown
// task, out-of-range partition or frame, or a spill file that fails
// validation on read — which the fetcher treats as segment loss.
func (s *shuffleStore) getFrame(epoch uint64, mapSeq, part, frame int) (data []byte, more, ok bool) {
	s.mu.Lock()
	out, ok := s.byEpoch[epoch][mapSeq]
	s.mu.Unlock()
	if !ok {
		return nil, false, false
	}
	if out.file == nil {
		if part < 0 || part >= len(out.parts) || frame != 0 {
			return nil, false, false
		}
		return out.parts[part], false, true
	}
	sf := out.file
	if part < 0 || part >= sf.NumPartitions() {
		return nil, false, false
	}
	nframes := sf.Frames(part)
	if nframes == 0 {
		// An empty partition has no frames on disk; serve its coverage
		// marker (defensive — the master only publishes non-empty segments).
		if frame != 0 {
			return nil, false, false
		}
		return mapreduce.EncodeSegment(mapreduce.Segment{}), false, true
	}
	if frame < 0 || frame >= nframes {
		return nil, false, false
	}
	blob, hit := s.cacheTake(frameKey{epoch, mapSeq, part, frame})
	if !hit {
		var err error
		blob, err = sf.ReadFrame(part, frame)
		if err != nil {
			// Corrupt or truncated on disk: answer as loss so the master
			// re-executes the owning map instead of the reducer stalling.
			return nil, false, false
		}
	}
	if next := frame + 1; next < nframes {
		// Prefetch the cursor's next fetch: its disk read and CRC check
		// overlap the round trip serving this frame. Racing prefetches of
		// the same frame dedup in cachePut; a file concurrently removed by
		// re-execution or prune just fails the read and caches nothing.
		nk := frameKey{epoch, mapSeq, part, next}
		s.pmu.Lock()
		_, have := s.prefetch[nk]
		s.pmu.Unlock()
		if !have {
			go func() {
				if b, err := sf.ReadFrame(part, next); err == nil {
					s.cachePut(nk, b)
				}
			}()
		}
	}
	return blob, frame+1 < nframes, true
}

// prune drops stored output for every epoch not in the active set — the
// master piggybacks the set on TaskWait/TaskDone replies, so finished
// jobs' segments (and their spill files) are released within a heartbeat.
func (s *shuffleStore) prune(active []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := make(map[uint64]bool, len(active))
	for _, e := range active {
		keep[e] = true
	}
	for e, outs := range s.byEpoch {
		if keep[e] {
			continue
		}
		for _, out := range outs {
			if out.file != nil {
				out.file.Remove()
			}
		}
		delete(s.byEpoch, e)
	}
	// Drop prefetched frames of pruned epochs; the cache is bounded anyway,
	// but there is no reason to keep dead jobs' bytes until eviction.
	s.pmu.Lock()
	for k := range s.prefetch {
		if !keep[k.epoch] {
			delete(s.prefetch, k)
		}
	}
	s.pmu.Unlock()
}

// shuffleRPC is the worker's shuffle server facade ("Shuffle" service).
type shuffleRPC struct {
	w *Worker
}

// Fetch hands one stored map-output blob (or one frame of a disk-backed
// one) to a pulling reducer. OK is false when this worker cannot serve it
// (pruned, it never ran the map, or the spill file failed validation) —
// the fetcher treats that as segment loss.
func (r *shuffleRPC) Fetch(args FetchPartArgs, reply *FetchPartReply) error {
	reply.Data, reply.More, reply.OK = r.w.store.getFrame(args.Epoch, args.MapSeq, args.Partition, args.Frame)
	return nil
}

// NewWorker dials the master and returns a ready worker.
//
// Deprecated: use ConnectWorker with options; this wrapper remains for
// source compatibility with the positional API.
func NewWorker(id, masterAddr string) (*Worker, error) {
	return ConnectWorker(id, masterAddr)
}

// ConnectWorker dials the master and returns a ready worker, configured by
// functional options: WithPollInterval sets the idle heartbeat period,
// WithShuffleServing toggles the worker-served shuffle plane (on by
// default) and WithObserver attaches telemetry (dist.task spans,
// failure-report counters).
func ConnectWorker(id, masterAddr string, opts ...Option) (*Worker, error) {
	if id == "" {
		return nil, fmt.Errorf("dist: worker needs an id")
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	conn, err := net.Dial("tcp", masterAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s dial: %w", id, err)
	}
	w := &Worker{
		ID:           id,
		PollInterval: cfg.pollInterval,
		registry:     NewRegistry(),
		client:       rpc.NewClient(conn),
		ob:           cfg.observer,
		class:        cfg.coreClass,
		peers:        make(map[string]*rpc.Client),
	}
	if cfg.serveShuffle {
		// Serve on the interface that reaches the master — the same one
		// reducers on other nodes dial back over.
		host, _, err := net.SplitHostPort(conn.LocalAddr().String())
		if err != nil {
			w.client.Close()
			return nil, fmt.Errorf("dist: worker %s local addr: %w", id, err)
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			w.client.Close()
			return nil, fmt.Errorf("dist: worker %s shuffle listen: %w", id, err)
		}
		w.shuffleLn = ln
		w.shuffleAddr = ln.Addr().String()
		w.store = newShuffleStore()
		srv := rpc.NewServer()
		if err := srv.RegisterName("Shuffle", &shuffleRPC{w: w}); err != nil {
			ln.Close()
			w.client.Close()
			return nil, err
		}
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(c)
			}
		}()
		if cfg.spillDir != "" {
			if err := os.MkdirAll(cfg.spillDir, 0o755); err != nil {
				w.Close()
				return nil, fmt.Errorf("dist: worker %s spill dir: %w", id, err)
			}
			dir, err := os.MkdirTemp(cfg.spillDir, "worker-")
			if err != nil {
				w.Close()
				return nil, fmt.Errorf("dist: worker %s spill dir: %w", id, err)
			}
			w.spillDir = dir
		}
	}
	return w, nil
}

// Registry exposes the worker-side job registry for custom registrations.
func (w *Worker) Registry() *Registry { return w.registry }

// ShuffleAddr returns the worker's shuffle-serve address, "" when serving
// is off.
func (w *Worker) ShuffleAddr() string { return w.shuffleAddr }

// TasksRun reports how many task attempts this worker completed.
func (w *Worker) TasksRun() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasksRun
}

// ReportErrors reports how many task-failure (or segment-loss) reports
// could not be delivered to the master (the RPC itself failed). The
// master's timeout path still recovers the task; the counter surfaces the
// degraded signalling that used to be dropped silently.
func (w *Worker) ReportErrors() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reportErrors
}

// Stop makes the polling loop exit after the current task.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// reportFailure tells the master to requeue a task this worker could not
// run. Delivery is best-effort — the master's timeout path covers a lost
// report — but a failed report is no longer dropped silently: it is
// counted (ReportErrors) and surfaced through the observer.
func (w *Worker) reportFailure(task Task, cause error) {
	err := w.client.Call("Master.ReportFailure", TaskFailed{
		WorkerID: w.ID, Epoch: task.Epoch, Kind: task.Kind, Seq: task.Seq, Reason: cause.Error(),
	}, &Ack{})
	if err != nil {
		w.countReportError()
	}
}

func (w *Worker) countReportError() {
	w.mu.Lock()
	w.reportErrors++
	w.mu.Unlock()
	w.ob.Count("dist.worker.report_errors", 1)
}

// Close tears down the connections — the master link, the shuffle server
// and any peer links. Closing the shuffle server is what makes this
// worker's served segments unreachable: reducers hit it, report the loss,
// and the master re-executes the maps elsewhere.
func (w *Worker) Close() error {
	w.Stop()
	w.mu.Lock()
	peers := w.peers
	w.peers = make(map[string]*rpc.Client)
	w.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
	if w.shuffleLn != nil {
		w.shuffleLn.Close()
	}
	if w.spillDir != "" {
		// The spill files ARE this worker's served segments; removing them is
		// part of what makes a closed worker's output unreachable.
		os.RemoveAll(w.spillDir)
	}
	return w.client.Close()
}

func (w *Worker) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

// Run polls the master for tasks and executes them until the master
// reports no jobs remain or Stop is called. It returns the first hard
// error (task execution errors are hard: the job cannot succeed with a
// broken factory). It is RunCtx with a background context.
func (w *Worker) Run() error { return w.run(context.Background(), false) }

// RunCtx is Run with cancellation: a cancelled context stops the loop at
// the next poll or idle sleep with an error wrapping ctx.Err().
func (w *Worker) RunCtx(ctx context.Context) error { return w.run(ctx, false) }

// RunForever is the daemon mode: the worker keeps polling across jobs,
// treating an idle master as "wait", until Stop is called. It is
// RunForeverCtx with a background context.
func (w *Worker) RunForever() error { return w.run(context.Background(), true) }

// RunForeverCtx is RunForever with cancellation.
func (w *Worker) RunForeverCtx(ctx context.Context) error { return w.run(ctx, true) }

func (w *Worker) run(ctx context.Context, persistent bool) error {
	// Background reduces terminate on their own within a poll interval of
	// any exit condition (stop, cancellation, closed connection, stale
	// epoch); wait for them so no attempt outlives Run.
	defer w.bg.Wait()
	for !w.isStopped() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dist: worker %s: cancelled: %w", w.ID, err)
		}
		var task Task
		if err := w.client.Call("Master.GetTask", GetTaskArgs{WorkerID: w.ID, Addr: w.shuffleAddr, Class: w.class}, &task); err != nil {
			if w.isStopped() {
				break // Close raced with the poll: clean shutdown
			}
			return fmt.Errorf("dist: worker %s poll: %w", w.ID, err)
		}
		switch task.Kind {
		case TaskDone:
			if w.store != nil {
				w.store.prune(task.ActiveEpochs)
			}
			if persistent {
				if err := w.idle(ctx); err != nil {
					return err
				}
				continue
			}
			w.bg.Wait()
			return w.takeBgErr()
		case TaskWait:
			// The wait reply carries the active-epoch set: release stored
			// map output of finished jobs before idling.
			if w.store != nil {
				w.store.prune(task.ActiveEpochs)
			}
			if err := w.idle(ctx); err != nil {
				return err
			}
		case TaskMap:
			if err := w.runMap(task); err != nil {
				if w.isStopped() {
					break
				}
				return err
			}
		case TaskReduce:
			// Streamed in the background: the fetch loop may have to wait
			// for the tail of the map wave, and this polling loop is what
			// runs those maps.
			w.bg.Add(1)
			go w.runReduceBg(ctx, task)
		default:
			return fmt.Errorf("dist: worker %s: unknown task kind %q", w.ID, task.Kind)
		}
	}
	w.bg.Wait()
	return w.takeBgErr()
}

// takeBgErr returns the first background-reduce error, if any.
func (w *Worker) takeBgErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bgErr
}

// idle sleeps one poll interval, waking early on cancellation.
func (w *Worker) idle(ctx context.Context) error {
	timer := time.NewTimer(w.PollInterval)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("dist: worker %s: cancelled: %w", w.ID, ctx.Err())
	case <-timer.C:
		return nil
	}
}

// taskSpan opens a dist.task span for one attempt when the observer is
// enabled; the returned span is inert otherwise. The attrs carry the full
// attempt identity — job, kind, seq, worker, epoch — so concurrent attempts
// of the same task (speculative re-execution, post-timeout reissue) stay
// distinguishable in a trace.
func (w *Worker) taskSpan(task Task) obs.Span {
	if !w.ob.Enabled() {
		return obs.Span{}
	}
	return obs.Start(w.ob, "dist.task",
		obs.Str("job", task.Job.Workload),
		obs.Str("kind", task.Kind),
		obs.Int("seq", int64(task.Seq)),
		obs.Str("worker", w.ID),
		obs.Int("epoch", int64(task.Epoch)))
}

// taskRef is the phase-event identity of one task attempt on this worker.
func (w *Worker) taskRef(task Task) obs.TaskRef {
	kind := obs.KindMap
	if task.Kind == TaskReduce {
		kind = obs.KindReduce
	}
	return obs.TaskRef{
		Job: task.Job.Workload, Kind: kind, Index: task.Seq, Worker: w.ID, Epoch: task.Epoch,
		Class: w.class,
	}
}

func (w *Worker) runMap(task Task) error {
	sp := w.taskSpan(task)
	defer sp.End()
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	ref := w.taskRef(task)
	pc := obs.NewPhaseClock(w.ob, ref)
	segs, counters, err := mapreduce.ExecuteMapSplitObs(job, task.SplitData, task.NParts, ref, w.ob)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s map %d: %w", w.ID, task.Seq, err)
	}
	if w.shuffleAddr != "" && w.spillDir != "" {
		// Out-of-core serving: the output goes straight to a segment file and
		// is served from it frame by frame — the resident blobs are never
		// built. The accounting PartStats carry comes from the file's index,
		// which matches the in-memory per-record formula exactly.
		w.mu.Lock()
		w.tasksRun++
		w.spillSeq++
		seq := w.spillSeq
		w.mu.Unlock()
		path := filepath.Join(w.spillDir, fmt.Sprintf("e%d-m%d-a%d.seg", task.Epoch, task.Seq, seq))
		tSpill := pc.Start()
		sf, err := mapreduce.WriteSegmentsFile(path, segs)
		if err != nil {
			w.reportFailure(task, err)
			return fmt.Errorf("dist: worker %s map %d spill: %w", w.ID, task.Seq, err)
		}
		pc.EmitIO(obs.PhaseSpillWrite, tSpill, 0, int64(sf.StoredBytes()))
		counters.SpillFilesWritten++
		counters.SpillFileBytesWritten += sf.StoredBytes()
		w.store.putFile(task.Epoch, task.Seq, sf)
		stats := make([]PartStat, 0, len(segs))
		for p := range segs {
			if segs[p].Len() > 0 {
				stats = append(stats, PartStat{Part: p, Recs: int(sf.Records(p)), Bytes: int64(sf.PartitionBytes(p))})
			}
		}
		return w.client.Call("Master.CompleteMap", MapDone{
			WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq,
			Addr: w.shuffleAddr, PartStats: stats, Counters: counters,
		}, &Ack{})
	}
	// Encode every partition — empties included, as 8-byte coverage
	// markers — and report which ones actually hold records, so the master
	// can publish the segments to early-dispatched reducers without
	// rescanning the payload.
	tWrite := pc.Start()
	parts := make([][]byte, len(segs))
	nonEmpty := make([]int, 0, len(segs))
	var encoded int64
	for p, seg := range segs {
		parts[p] = mapreduce.EncodeSegment(seg)
		encoded += int64(len(parts[p]))
		if seg.Len() > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	pc.EmitIO(obs.PhaseWrite, tWrite, 0, encoded)
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	if w.shuffleAddr != "" {
		// Serve the output from here: keep the blobs, report addressable
		// references with the same header-derived accounting the master
		// would compute from inline blobs.
		w.store.put(task.Epoch, task.Seq, parts)
		stats := make([]PartStat, 0, len(nonEmpty))
		for _, p := range nonEmpty {
			n, b, err := mapreduce.SegmentStats(parts[p])
			if err != nil || n == 0 {
				continue
			}
			stats = append(stats, PartStat{Part: p, Recs: n, Bytes: int64(b)})
		}
		return w.client.Call("Master.CompleteMap", MapDone{
			WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq,
			Addr: w.shuffleAddr, PartStats: stats, Counters: counters,
		}, &Ack{})
	}
	return w.client.Call("Master.CompleteMap", MapDone{
		WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq, Parts: parts, NonEmpty: nonEmpty, Counters: counters,
	}, &Ack{})
}

// runReduceBg runs one streaming reduce attempt in the background. A hard
// error is recorded and stops the worker; the polling loop returns it.
func (w *Worker) runReduceBg(ctx context.Context, task Task) {
	defer w.bg.Done()
	sp := w.taskSpan(task)
	defer sp.End()
	if err := w.runReduceStreaming(ctx, task); err != nil {
		w.mu.Lock()
		// An error after Stop/Close is shutdown fallout (closed connection),
		// not a task failure — the same suppression the synchronous task
		// paths apply.
		if !w.stopped && w.bgErr == nil {
			w.bgErr = err
		}
		w.stopped = true
		w.mu.Unlock()
	}
}

// peer returns a cached (or fresh) client to another worker's shuffle
// server.
func (w *Worker) peer(addr string) (*rpc.Client, error) {
	w.mu.Lock()
	c := w.peers[addr]
	w.mu.Unlock()
	if c != nil {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	c = rpc.NewClient(conn)
	w.mu.Lock()
	if old := w.peers[addr]; old != nil {
		w.mu.Unlock()
		c.Close()
		return old, nil
	}
	w.peers[addr] = c
	w.mu.Unlock()
	return c, nil
}

// dropPeer discards a peer client after a call failure so the next fetch
// redials instead of reusing a dead connection.
func (w *Worker) dropPeer(addr string, c *rpc.Client) {
	w.mu.Lock()
	if w.peers[addr] == c {
		delete(w.peers, addr)
	}
	w.mu.Unlock()
	c.Close()
}

// fetchServed pulls one served segment from its producing worker (or this
// worker's own store), looping the frame cursor until the producer reports
// no more frames: one blob for in-memory producers, the partition's frames
// in order for disk-backed ones. Any failure — dial, call, the producer no
// longer holding the blob, or a frame failing spill-file validation — is
// segment loss to the caller.
func (w *Worker) fetchServed(s TaggedSegment, epoch uint64, partition int) ([][]byte, error) {
	var frames [][]byte
	for frame := 0; ; frame++ {
		blob, more, err := w.fetchServedFrame(s, epoch, partition, frame)
		if err != nil {
			return nil, err
		}
		frames = append(frames, blob)
		if !more {
			return frames, nil
		}
	}
}

// fetchServedFrame pulls one frame of a served segment.
func (w *Worker) fetchServedFrame(s TaggedSegment, epoch uint64, partition, frame int) ([]byte, bool, error) {
	if s.Addr == w.shuffleAddr && w.store != nil {
		blob, more, ok := w.store.getFrame(epoch, s.MapSeq, partition, frame)
		if !ok {
			return nil, false, fmt.Errorf("dist: worker %s: own store lacks epoch %d map %d frame %d", w.ID, epoch, s.MapSeq, frame)
		}
		return blob, more, nil
	}
	c, err := w.peer(s.Addr)
	if err != nil {
		return nil, false, err
	}
	var reply FetchPartReply
	args := FetchPartArgs{Epoch: epoch, MapSeq: s.MapSeq, Partition: partition, Frame: frame}
	if err := c.Call("Shuffle.Fetch", args, &reply); err != nil {
		w.dropPeer(s.Addr, c)
		return nil, false, err
	}
	if !reply.OK {
		return nil, false, fmt.Errorf("dist: worker at %s cannot serve epoch %d map %d part %d frame %d", s.Addr, epoch, s.MapSeq, partition, frame)
	}
	return reply.Data, reply.More, nil
}

// runReduceStreaming fetches the task's partition segments as the map wave
// publishes them — inline payloads from the master, served payloads from
// their producing workers — then merges and reduces once the shuffle is
// complete. Unreachable served segments are reported to the master
// (Master.ReportLostSegments) and the loop keeps streaming until the
// re-executed maps republish them. A Stale reply or cancellation abandons
// the attempt quietly (the job is gone, or the loop owner reports the
// cancellation).
func (w *Worker) runReduceStreaming(ctx context.Context, task Task) error {
	job, err := w.registry.Build(task.Job)
	if err != nil {
		w.reportFailure(task, err)
		return err
	}
	ref := w.taskRef(task)
	pc := obs.NewPhaseClock(w.ob, ref)
	// The fetch loop is the distributed shuffle transport: time spent here —
	// including waits for the tail of the map wave and re-fetches after
	// segment loss — lands in the same merge-fetch bucket the in-process
	// collector charges its merges to.
	tFetch := pc.Start()
	byMap := make(map[int]TaggedSegment) // latest publication per MapSeq
	blobs := make(map[int][][]byte)      // resolved payload frames per MapSeq
	cursor := 0
	for {
		if w.isStopped() || ctx.Err() != nil {
			return nil
		}
		var reply FetchSegmentsReply
		err := w.client.Call("Master.FetchSegments", FetchSegmentsArgs{
			WorkerID: w.ID, Epoch: task.Epoch, Partition: task.Partition, Cursor: cursor,
		}, &reply)
		if err != nil {
			if w.isStopped() {
				return nil
			}
			return fmt.Errorf("dist: worker %s reduce %d fetch: %w", w.ID, task.Seq, err)
		}
		if reply.Stale {
			return nil
		}
		for _, s := range reply.Segments {
			// Latest-per-MapSeq: a replacement published by a re-executed
			// map supersedes the lost original, payload included.
			if _, ok := byMap[s.MapSeq]; ok {
				delete(blobs, s.MapSeq)
			}
			byMap[s.MapSeq] = s
		}
		cursor = reply.Cursor
		// Resolve unresolved entries. A served segment whose producer is
		// unreachable is lost: report it (grouped per owner), drop the
		// entry, and keep streaming — the master re-executes the maps and
		// the replacements arrive under the same MapSeq.
		lost := make(map[string][]int)
		for seq, s := range byMap {
			if _, ok := blobs[seq]; ok {
				continue
			}
			if s.Addr == "" {
				blobs[seq] = [][]byte{s.Data}
				continue
			}
			frames, err := w.fetchServed(s, task.Epoch, task.Partition)
			if err != nil {
				lost[s.Owner] = append(lost[s.Owner], seq)
				continue
			}
			blobs[seq] = frames
		}
		for owner, seqs := range lost {
			sort.Ints(seqs)
			err := w.client.Call("Master.ReportLostSegments", SegmentsLost{
				WorkerID: w.ID, Epoch: task.Epoch, Partition: task.Partition,
				MapSeqs: seqs, Owner: owner,
			}, &Ack{})
			if err != nil {
				w.countReportError()
			}
			for _, seq := range seqs {
				delete(byMap, seq)
			}
		}
		if reply.Complete && len(lost) == 0 && len(blobs) == len(byMap) {
			break
		}
		if len(reply.Segments) == 0 {
			// Nothing new: wait a heartbeat for more maps to finish.
			timer := time.NewTimer(w.PollInterval)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil
			case <-timer.C:
			}
		}
	}
	var fetched int64
	for _, frames := range blobs {
		for _, f := range frames {
			fetched += int64(len(f))
		}
	}
	pc.EmitIO(obs.PhaseMergeFetch, tFetch, fetched, 0)
	// Restore map-task order — the order the engine's stable merge is
	// defined over — regardless of fetch interleaving, then decode the
	// blobs (zero-copy: the record payload aliases the received buffers).
	// A disk-backed segment arrives as several frames — adjacent chunks of
	// one sorted run — and feeding them to the stable merge as consecutive
	// slots reproduces the whole-run merge byte for byte.
	seqs := make([]int, 0, len(byMap))
	for seq := range byMap {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	parts := make([]mapreduce.Segment, 0, len(seqs))
	for _, seq := range seqs {
		for i, blob := range blobs[seq] {
			seg, err := mapreduce.DecodeSegment(blob)
			if err != nil {
				w.reportFailure(task, err)
				return fmt.Errorf("dist: worker %s reduce %d decode map-%d frame %d: %w", w.ID, task.Seq, seq, i, err)
			}
			parts = append(parts, seg)
		}
	}
	out, counters, err := mapreduce.ExecuteReduceSegObs(job, parts, ref, w.ob)
	if err != nil {
		w.reportFailure(task, err)
		return fmt.Errorf("dist: worker %s reduce %d: %w", w.ID, task.Seq, err)
	}
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	tWrite := pc.Start()
	// The reducer's output is already a flat segment; encoding it is a
	// header write plus one payload copy — no []KV round-trip.
	blob := mapreduce.EncodeSegment(out)
	pc.EmitIO(obs.PhaseWrite, tWrite, 0, int64(len(blob)))
	return w.client.Call("Master.CompleteReduce", ReduceDone{
		WorkerID: w.ID, Epoch: task.Epoch, Seq: task.Seq, Partition: task.Partition,
		Output: blob, Counters: counters,
	}, &Ack{})
}
