package dist

// job.go holds the per-job state the multi-tenant master keeps one of per
// submitted job: the task tables, the streaming-shuffle publication log,
// the per-job scheduling knobs (descriptor overrides falling back to
// master defaults) and the completion latch the JobHandle waits on. All
// fields are guarded by the master's mutex except result/err, which are
// written exactly once before doneCh is closed and only read after it is
// closed (the channel close is the happens-before edge).

import (
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
)

// Job lifecycle states, surfaced in JobStatus.State.
const (
	// JobQueued: admitted to the master but not yet scheduled (the
	// concurrent-job cap is reached); its tasks are not dispatched.
	JobQueued = "queued"
	// JobRunning: the scheduler is dispatching this job's tasks.
	JobRunning = "running"
	// JobDone: completed successfully; the result is available.
	JobDone = "done"
	// JobFailed: completed unsuccessfully (output decode failure).
	JobFailed = "failed"
	// JobCancelled: aborted by JobHandle.Cancel or a cancelled SubmitCtx.
	JobCancelled = "cancelled"
)

// taskState tracks one task attempt's lifecycle in a job's tables.
type taskState struct {
	task       Task
	assigned   bool
	assignee   string
	assignedAt time.Time
	done       bool
	// owner/ownerAddr record who holds a completed map task's shuffle
	// output and where it is served from. ownerAddr is empty for inline
	// output (held by the master, survives the worker); when set, the
	// segments die with the worker and the task must re-execute if the
	// owner is evicted or a reducer reports the segments lost.
	owner     string
	ownerAddr string
	// readyAt is when the task became dispatchable (job admission, or
	// re-enqueue after loss); the gap to the first assignment is the
	// schedule phase. For reduce tasks it includes the slowstart gate by
	// design — that wait is real dispatch latency the paper's shuffle
	// accounting has to see.
	readyAt time.Time
}

// jobState is one job's full state in the master.
type jobState struct {
	id        string
	epoch     uint64
	desc      JobDescriptor
	blockSize int

	state string // Job* constants
	phase string // "map" | "reduce" while running, "" otherwise

	mapTasks []*taskState
	// partSegs is the streaming shuffle publication log: per partition,
	// the segments published by completed map tasks in publication order.
	// The log is append-only — a map re-executed after segment loss
	// appends a replacement entry with the same MapSeq, and consumers keep
	// the latest entry per MapSeq — so reducer cursors (an index into this
	// log) stay valid across recoveries.
	partSegs [][]TaggedSegment
	mapsLeft int
	redTasks []*taskState
	// redOutputs holds each partition's output as a wire-encoded segment
	// blob, decoded once when the job completes.
	redOutputs [][]byte
	redsLeft   int

	counters      mapreduce.Counters
	reassigned    int
	speculative   int
	earlyReduces  int
	recoveredMaps int

	// Effective scheduling knobs: descriptor overrides, else master
	// defaults, resolved once at submission.
	taskTimeout     time.Duration
	specFraction    float64
	reduceSlowstart float64
	priority        int

	submittedAt time.Time
	finishedAt  time.Time

	doneCh chan struct{}
	result *mapreduce.Result
	err    error
	span   obs.Span
	// final is the status frozen at retirement, after which the live tables
	// are gone; jobStatusLocked serves it for terminal jobs.
	final *JobStatus
}

// newJobState builds a queued job from its split input. The caller
// assigns id and epoch and registers the state in the master's tables.
func newJobState(id string, epoch uint64, desc JobDescriptor, blockSize int, chunks [][]byte, def config, now time.Time) *jobState {
	js := &jobState{
		id:              id,
		epoch:           epoch,
		desc:            desc,
		blockSize:       blockSize,
		state:           JobQueued,
		mapsLeft:        len(chunks),
		redsLeft:        desc.NumReducers,
		taskTimeout:     def.taskTimeout,
		specFraction:    def.specFraction,
		reduceSlowstart: def.reduceSlowstart,
		priority:        desc.Priority,
		submittedAt:     now,
		doneCh:          make(chan struct{}),
	}
	if desc.TaskTimeout > 0 {
		js.taskTimeout = desc.TaskTimeout
	}
	if desc.SpecFraction > 0 && desc.SpecFraction <= 1 {
		js.specFraction = desc.SpecFraction
	}
	if desc.ReduceSlowstart > 0 && desc.ReduceSlowstart <= 1 {
		js.reduceSlowstart = desc.ReduceSlowstart
	}
	js.mapTasks = make([]*taskState, len(chunks))
	for i, c := range chunks {
		js.mapTasks[i] = &taskState{task: Task{
			Kind: TaskMap, JobID: id, Epoch: epoch, Seq: i, Job: desc,
			NParts: desc.NumReducers, SplitData: c,
		}, readyAt: now}
	}
	js.partSegs = make([][]TaggedSegment, desc.NumReducers)
	// Reduce tasks exist from the start: they carry no shuffle data
	// (workers stream segments with FetchSegments), so they can be
	// dispatched as soon as the slowstart threshold of completed maps is
	// met.
	js.redTasks = make([]*taskState, desc.NumReducers)
	for p := 0; p < desc.NumReducers; p++ {
		js.redTasks[p] = &taskState{task: Task{
			Kind: TaskReduce, JobID: id, Epoch: epoch, Seq: p, Job: desc,
			NParts: desc.NumReducers, Partition: p,
		}, readyAt: now}
	}
	js.redOutputs = make([][]byte, desc.NumReducers)
	return js
}

// finished reports a terminal state. Called under the master's mutex.
func (js *jobState) finished() bool {
	return js.state == JobDone || js.state == JobFailed || js.state == JobCancelled
}

// reduceEligible reports whether reduce tasks may be dispatched: always in
// the reduce phase, and during the map phase once the slowstart fraction
// of maps has completed. Called under the master's mutex.
func (js *jobState) reduceEligible() bool {
	if js.phase == "reduce" {
		return true
	}
	if js.phase != "map" || len(js.mapTasks) == 0 {
		return false
	}
	done := len(js.mapTasks) - js.mapsLeft
	return float64(done) >= js.reduceSlowstart*float64(len(js.mapTasks))
}

// runningTasks counts in-flight assignments — the fair scheduler's load
// measure. Called under the master's mutex.
func (js *jobState) runningTasks() int {
	n := 0
	for _, ts := range js.mapTasks {
		if ts.assigned && !ts.done {
			n++
		}
	}
	for _, ts := range js.redTasks {
		if ts.assigned && !ts.done {
			n++
		}
	}
	return n
}

// clearTables drops the finished (or aborted) job's task tables and
// buffered outputs so split and shuffle data are not pinned in memory
// after completion. Called under the master's mutex.
func (js *jobState) clearTables() {
	js.mapTasks = nil
	js.partSegs = nil
	js.redTasks = nil
	js.redOutputs = nil
}

// invalidateMap re-enqueues a completed map task whose shuffle output is
// gone (its serving worker died): the task re-executes and republishes.
// Returns false when the task is not in a revocable state (not done, or
// its output is master-held inline data that cannot be lost). Called
// under the master's mutex.
func (js *jobState) invalidateMap(ts *taskState, now time.Time) bool {
	if !ts.done || ts.ownerAddr == "" {
		return false
	}
	ts.done = false
	ts.assigned = false
	ts.owner = ""
	ts.ownerAddr = ""
	ts.readyAt = now
	js.mapsLeft++
	js.recoveredMaps++
	if js.phase == "reduce" {
		js.phase = "map"
	}
	return true
}
