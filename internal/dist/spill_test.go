package dist

// spill_test.go covers the worker-served out-of-core shuffle
// (WithSpillDir): map output stored as checksummed segment files, served to
// reducers frame by frame through the Fetch cursor, pruned with its epoch,
// and — the recovery contract — a spill file that fails validation on read
// is answered as segment loss, so the master re-executes the owning map.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// TestShuffleStoreFrameCursor exercises the disk-backed store directly: a
// multi-frame partition must come back frame by frame, record-identical;
// replacing an entry and pruning its epoch must remove the files.
func TestShuffleStoreFrameCursor(t *testing.T) {
	dir := t.TempDir()
	// ~2.5 MB of records in one partition: several 1 MB frames.
	kvs := make([]mapreduce.KV, 30000)
	for i := range kvs {
		kvs[i] = mapreduce.KV{
			Key:   fmt.Sprintf("key-%08d", i),
			Value: strings.Repeat("v", 64) + strconv.Itoa(i),
		}
	}
	seg := mapreduce.SegmentFromKVs(kvs)
	sf, err := mapreduce.WriteSegmentsFile(filepath.Join(dir, "m0.seg"), []mapreduce.Segment{seg, {}})
	if err != nil {
		t.Fatal(err)
	}
	if sf.Frames(0) < 2 {
		t.Fatalf("test wants a multi-frame partition, got %d frames", sf.Frames(0))
	}

	store := newShuffleStore()
	store.putFile(7, 0, sf)

	var got []mapreduce.KV
	frames := 0
	for frame := 0; ; frame++ {
		blob, more, ok := store.getFrame(7, 0, 0, frame)
		if !ok {
			t.Fatalf("frame %d not served", frame)
		}
		s, err := mapreduce.DecodeSegment(blob)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		got = append(got, s.KVs()...)
		frames++
		if !more {
			break
		}
	}
	if frames != sf.Frames(0) {
		t.Errorf("cursor walked %d frames, file has %d", frames, sf.Frames(0))
	}
	if len(got) != len(kvs) {
		t.Fatalf("round-tripped %d records, want %d", len(got), len(kvs))
	}
	for i := range got {
		if got[i] != kvs[i] {
			t.Fatalf("record %d diverges", i)
		}
	}

	// Past-the-end frame, unknown map, empty partition.
	if _, _, ok := store.getFrame(7, 0, 0, frames); ok {
		t.Error("past-the-end frame served")
	}
	if _, _, ok := store.getFrame(7, 99, 0, 0); ok {
		t.Error("unknown map seq served")
	}
	if blob, more, ok := store.getFrame(7, 0, 1, 0); !ok || more {
		t.Errorf("empty partition: ok=%v more=%v", ok, more)
	} else if s, err := mapreduce.DecodeSegment(blob); err != nil || s.Len() != 0 {
		t.Errorf("empty partition served %d records, err %v", s.Len(), err)
	}

	// A replacement entry releases the superseded file; pruning the epoch
	// releases the replacement.
	sf2, err := mapreduce.WriteSegmentsFile(filepath.Join(dir, "m0-retry.seg"), []mapreduce.Segment{seg, {}})
	if err != nil {
		t.Fatal(err)
	}
	store.putFile(7, 0, sf2)
	if _, err := os.Stat(sf.Path()); !os.IsNotExist(err) {
		t.Error("superseded spill file not removed")
	}
	store.prune(nil)
	if _, err := os.Stat(sf2.Path()); !os.IsNotExist(err) {
		t.Error("pruned epoch's spill file not removed")
	}
	if _, _, ok := store.getFrame(7, 0, 0, 0); ok {
		t.Error("pruned entry still served")
	}
}

// TestSpillDirShuffleEndToEnd runs a job whose reduce input crosses the
// frame size — so the More cursor actually loops — through spill-dir
// workers, and checks output and accounting against expectations. The sort
// workload keeps every input byte in the shuffle (no combiner collapse).
func TestSpillDirShuffleEndToEnd(t *testing.T) {
	input := workloads.GenerateText(2*units.MB+512*units.KB, 41)
	spillRoot := t.TempDir()

	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	workers := make([]*Worker, 2)
	for i := range workers {
		w, err := ConnectWorker("spill-"+strconv.Itoa(i), m.Addr(), WithSpillDir(spillRoot))
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}(w)
	}

	res, err := m.SubmitCtx(context.Background(),
		JobDescriptor{Workload: "sort", NumReducers: 2}, input, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Global order and record conservation — the sort workload's contract.
	var prev string
	total := 0
	for _, p := range res.Output() {
		for _, kv := range p {
			if kv.Key < prev {
				t.Fatal("output out of order through the frame-cursor shuffle")
			}
			prev = kv.Key
			total++
		}
	}
	if want := len(strings.Split(strings.TrimRight(string(input), "\n"), "\n")); total != want {
		t.Fatalf("%d output records, want %d", total, want)
	}
	if res.Counters.SpillFilesWritten < res.Counters.MapTasks {
		t.Errorf("SpillFilesWritten = %d, want >= one per map task (%d)",
			res.Counters.SpillFilesWritten, res.Counters.MapTasks)
	}
	if res.Counters.SpillFileBytesWritten == 0 {
		t.Error("SpillFileBytesWritten = 0 for a disk-served shuffle")
	}

	// Closing the workers removes their spill trees.
	for _, w := range workers {
		w.Close()
	}
	ents, err := os.ReadDir(spillRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("worker spill trees survived Close: %v", names)
	}
}

// TestSpillFileCorruptionRerun is the recovery half of the out-of-core
// shuffle: a worker serves its map output from spill files, the files rot
// on disk before any reducer fetches them, and the job must still complete
// correctly — the fetch fails validation, the reducer reports the loss,
// and the master re-executes the maps, exactly the dead-worker path.
func TestSpillFileCorruptionRerun(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 43)
	desc := JobDescriptor{
		Workload: "wordcount", NumReducers: 1,
		TaskTimeout: time.Minute, ReduceSlowstart: 1.0,
	}
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// The corruptible worker: its polling loop never starts — the test
	// drives its map execution directly so every spill file exists before
	// anything fetches — but its shuffle server is live.
	corruptible, err := ConnectWorker("corruptible", m.Addr(), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer corruptible.Close()

	h, err := m.Submit(context.Background(), desc, input, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Status first: once the last map completes, the slowstart gate opens
		// and the next poll would hand this never-again-polling worker the
		// reduce task, stalling the job until the task timeout.
		if st := h.Status(); st.MapsTotal > 0 && st.MapsDone == st.MapsTotal {
			break
		}
		var task Task
		if err := corruptible.client.Call("Master.GetTask",
			GetTaskArgs{WorkerID: corruptible.ID, Addr: corruptible.ShuffleAddr()}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind == TaskMap {
			if err := corruptible.runMap(task); err != nil {
				t.Fatal(err)
			}
			served++
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
	if served < 2 {
		t.Fatalf("drove only %d maps; the corpus should split into several", served)
	}

	// Rot every spill file: flip a byte inside the frame region so reads
	// fail their CRC. The parsed index in memory stays valid, so the
	// failure surfaces exactly where it would in production — at ReadFrame.
	segFiles, err := filepath.Glob(filepath.Join(corruptible.spillDir, "*.seg"))
	if err != nil || len(segFiles) == 0 {
		t.Fatalf("no spill files to corrupt (err=%v)", err)
	}
	for _, path := range segFiles {
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.WriteAt([]byte{0xff}, 3); err != nil {
			t.Fatal(err)
		}
		fh.Close()
	}

	// A healthy worker takes the reduce, hits the rotten frames, reports
	// the loss, and re-executes the invalidated maps itself.
	survivor, err := ConnectWorker("survivor", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	go survivor.Run() //nolint:errcheck // exits when the job drains

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, res)
	want := map[string]int{}
	for _, word := range strings.Fields(string(input)) {
		want[word]++
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d after corruption re-run", k, got[k], v)
		}
	}
	if st := m.Stats(); st.RecoveredMaps < served {
		t.Errorf("RecoveredMaps = %d, want >= %d (every corrupt map re-run)", st.RecoveredMaps, served)
	}
}
