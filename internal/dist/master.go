package dist

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
	"heterohadoop/internal/units"
)

// maxRetired bounds how many terminal jobs the master keeps for Handle and
// JobStatus lookups (and how much history a snapshot carries).
const maxRetired = 32

// Master is the job coordinator. It is multi-tenant: Submit returns a
// JobHandle immediately, admitted jobs run concurrently under a
// fair/capacity scheduler, and workers connect over TCP and poll for
// tasks from any running job.
type Master struct {
	mu sync.Mutex

	registry *Registry
	listener net.Listener
	server   *rpc.Server
	// defaults are the master-level scheduling knobs; a JobDescriptor's
	// own knobs override them per job at submission.
	defaults config
	ob       obs.Observer
	snapPath string
	closed   bool

	// epoch is the job generation counter: every submission takes the next
	// value, and every Task carries its job's epoch, so completion and
	// failure reports route to the right job (byEpoch) and reports from a
	// cancelled or finished job find no entry instead of being recorded
	// against a live one. It is persisted, so epochs stay unique across a
	// snapshot restart. jobSeq numbers job IDs the same way.
	epoch  uint64
	jobSeq uint64

	jobs    map[string]*jobState // queued + running, by ID
	byEpoch map[uint64]*jobState // queued + running, by epoch (report routing)
	order   []*jobState          // queued + running, in submission order
	retired []*jobState          // recently finished, for Handle/JobStatus
	history []JobStatus          // terminal statuses, oldest first

	workers *workerTable

	// Master-lifetime totals (per-job counters die with the job).
	reassigned    int
	speculative   int
	earlyReduces  int
	evicted       int
	recoveredMaps int

	janitorStop chan struct{}
}

// NewMaster starts a master listening on addr ("127.0.0.1:0" for an
// ephemeral port). taskTimeout bounds how long a task may stay assigned
// without completion before it is reissued to another worker; idle workers
// additionally receive speculative copies of tasks that have been running
// for more than half the timeout.
//
// Deprecated: use StartMaster with WithTaskTimeout; this wrapper remains
// for source compatibility with the positional API.
func NewMaster(addr string, taskTimeout time.Duration) (*Master, error) {
	return StartMaster(addr, WithTaskTimeout(taskTimeout))
}

// StartMaster starts a master listening on addr ("127.0.0.1:0" for an
// ephemeral port), configured by functional options: WithTaskTimeout,
// WithSpeculativeFraction and WithReduceSlowstart set the default per-job
// scheduling knobs (a JobDescriptor can override them), WithMaxConcurrentJobs
// and WithMaxQueuedJobs bound the scheduler, WithWorkerTimeout sets the
// liveness window behind worker eviction, WithSnapshotPath enables crash
// recovery, and WithObserver attaches telemetry.
//
// When the snapshot path names an existing snapshot, the master restores it
// before accepting connections and resumes the jobs it holds.
func StartMaster(addr string, opts ...Option) (*Master, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: master listen: %w", err)
	}
	m := &Master{
		registry:    NewRegistry(),
		listener:    ln,
		server:      rpc.NewServer(),
		defaults:    cfg,
		ob:          cfg.observer,
		snapPath:    cfg.snapshotPath,
		jobs:        make(map[string]*jobState),
		byEpoch:     make(map[uint64]*jobState),
		workers:     newWorkerTable(),
		janitorStop: make(chan struct{}),
	}
	if m.snapPath != "" {
		snap, err := loadSnapshot(m.snapPath)
		if err != nil {
			ln.Close()
			return nil, err
		}
		if snap != nil {
			m.mu.Lock()
			m.restoreLocked(snap)
			m.mu.Unlock()
		}
	}
	if err := m.server.RegisterName("Master", &masterRPC{m: m}); err != nil {
		ln.Close()
		return nil, err
	}
	go m.acceptLoop()
	go m.janitor()
	return m, nil
}

// Addr returns the master's listen address for workers to dial.
func (m *Master) Addr() string { return m.listener.Addr().String() }

// Close stops accepting connections and the liveness janitor; subsequent
// submissions fail with ErrMasterClosed. In-flight jobs are left as they
// stand — with WithSnapshotPath a new StartMaster at the same path resumes
// them.
func (m *Master) Close() error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.janitorStop)
	}
	m.mu.Unlock()
	return m.listener.Close()
}

// Registry exposes the job registry for custom registrations.
func (m *Master) Registry() *Registry { return m.registry }

func (m *Master) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		go m.server.ServeConn(conn)
	}
}

// janitor is the liveness sweep: workers silent past the timeout window are
// evicted — their in-flight tasks requeued and their served map output
// re-executed.
func (m *Master) janitor() {
	period := m.defaults.workerTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-ticker.C:
			m.mu.Lock()
			silent := m.workers.silent(m.defaults.workerTimeout, now)
			for _, w := range silent {
				m.evictWorkerLocked(w.ID, now)
			}
			if len(silent) > 0 {
				m.saveSnapshotLocked()
			}
			m.mu.Unlock()
		}
	}
}

// Stats reports master-lifetime control counters for observability and
// tests. The per-job equivalents live in JobStatus.
type Stats struct {
	// Workers is the number of distinct workers that have polled.
	Workers int
	// Evicted is the number of workers declared dead after going silent (or
	// being reported unreachable by a reducer).
	Evicted int
	// Reassigned is the number of task attempts reissued after timeout,
	// failure report or eviction.
	Reassigned int
	// Speculative is the number of backup task attempts launched for
	// still-running stragglers.
	Speculative int
	// EarlyReduces is the number of reduce tasks dispatched before their map
	// wave had fully drained (slowstart-gated streaming shuffle).
	EarlyReduces int
	// RecoveredMaps is the number of completed map tasks re-executed because
	// their worker-served shuffle output was lost.
	RecoveredMaps int
}

// Stats returns the master's current statistics.
func (m *Master) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Workers:       len(m.workers.workers),
		Evicted:       m.evicted,
		Reassigned:    m.reassigned,
		Speculative:   m.speculative,
		EarlyReduces:  m.earlyReduces,
		RecoveredMaps: m.recoveredMaps,
	}
}

// Submit admits one job and returns immediately with its handle: the input
// is split into record-aligned chunks of roughly blockSize bytes (one map
// task each), the job queues behind the concurrent-job cap, and connected
// workers pick its tasks up alongside every other running job's. Wait on
// the handle for the result; ctx only bounds the admission itself (a
// cancelled ctx before admission fails the call — it is not attached to
// the job).
func (m *Master) Submit(ctx context.Context, desc JobDescriptor, input []byte, blockSize int) (*JobHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: submit cancelled: %w", err)
	}
	if desc.NumReducers < 1 {
		return nil, fmt.Errorf("%w: need at least one reducer", ErrInvalidJob)
	}
	// Validate the descriptor builds locally before distributing, and
	// prepare sampler/f-list auxiliary data.
	if err := PrepareAux(&desc, input); err != nil {
		return nil, err
	}
	if _, err := m.registry.Build(desc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidJob, err)
	}
	chunks := mapreduce.SplitInput(input, blockSize)
	if len(chunks) == 0 {
		return nil, ErrEmptyInput
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrMasterClosed
	}
	if len(m.jobs) >= m.defaults.maxQueuedJobs {
		return nil, ErrQueueFull
	}
	m.jobSeq++
	m.epoch++
	js := newJobState(fmt.Sprintf("job-%d", m.jobSeq), m.epoch, desc, blockSize, chunks, m.defaults, time.Now())
	m.jobs[js.id] = js
	m.byEpoch[js.epoch] = js
	m.order = append(m.order, js)
	if m.ob.Enabled() {
		js.span = obs.Start(m.ob, "dist.submit",
			obs.Str("job", desc.Workload),
			obs.Str("id", js.id),
			obs.Int("maps", int64(len(chunks))),
			obs.Int("reducers", int64(desc.NumReducers)))
		m.ob.Progress("dist.map/"+js.id, 0, len(chunks))
	}
	m.promoteLocked()
	m.saveSnapshotLocked()
	return &JobHandle{m: m, js: js}, nil
}

// SubmitCtx is the synchronous convenience wrapper: submit, then wait. A
// cancelled context aborts the job — undispatched tasks are dropped,
// in-flight completions become stale — and the error wraps ctx.Err().
//
// Deprecated: use Submit and JobHandle.Wait; this wrapper serializes the
// caller against a master built to run many jobs at once.
func (m *Master) SubmitCtx(ctx context.Context, desc JobDescriptor, input []byte, blockSize int) (*mapreduce.Result, error) {
	h, err := m.Submit(ctx, desc, input, blockSize)
	if err != nil {
		return nil, err
	}
	select {
	case <-h.Done():
		return h.result()
	case <-ctx.Done():
		// Abort loses to a concurrent finish: if the job completed between
		// ctx firing and the abort taking the lock, the result stands.
		m.abortJob(h.js, ctx.Err())
		<-h.Done()
		return h.result()
	}
}

// abortJob moves a job to the cancelled state and retires it: its tasks
// leave the scheduler, workers polling for it are turned away, and
// in-flight completion reports find no job to land on. A finished job is
// left alone.
func (m *Master) abortJob(js *jobState, cause error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js.finished() {
		return
	}
	js.state = JobCancelled
	js.err = fmt.Errorf("dist: job %s aborted: %w", js.desc.Workload, cause)
	m.retireLocked(js)
	m.promoteLocked()
	m.saveSnapshotLocked()
}

// finalizeLocked completes a job whose last reduce just landed: decode the
// partition outputs back to flat segments at the public Result boundary
// (string records are never materialized — a caller that wants them pays at
// Result.Output time) and retire the job. Called under m.mu.
func (m *Master) finalizeLocked(js *jobState) {
	output := make([]mapreduce.Segment, len(js.redOutputs))
	var ferr error
	for p, blob := range js.redOutputs {
		seg, err := mapreduce.DecodeSegment(blob)
		if err != nil {
			ferr = fmt.Errorf("dist: job %s: partition %d output: %w", js.desc.Workload, p, err)
			break
		}
		output[p] = seg
	}
	if ferr != nil {
		js.state = JobFailed
		js.err = ferr
	} else {
		res := mapreduce.NewResult(output, js.counters)
		res.Counters.MapTasks = len(js.mapTasks)
		res.Counters.ReduceTasks = js.desc.NumReducers
		js.state = JobDone
		js.result = res
	}
	m.retireLocked(js)
	m.promoteLocked()
	m.saveSnapshotLocked()
}

// retireLocked removes a terminal job from the active tables, records its
// final status, frees its task tables and wakes its waiters. The jobState
// itself is kept on a bounded ring so handles stay answerable. Called under
// m.mu with js.state already terminal and result/err set.
func (m *Master) retireLocked(js *jobState) {
	js.phase = ""
	js.finishedAt = time.Now()
	final := m.jobStatusLocked(js)
	js.final = &final
	m.history = append(m.history, final)
	if len(m.history) > maxRetired {
		m.history = m.history[len(m.history)-maxRetired:]
	}
	delete(m.jobs, js.id)
	delete(m.byEpoch, js.epoch)
	for i, o := range m.order {
		if o == js {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.retired = append(m.retired, js)
	if len(m.retired) > maxRetired {
		m.retired = m.retired[1:]
	}
	js.clearTables()
	js.span.End()
	close(js.doneCh)
}

// promoteLocked admits queued jobs into the running set up to the
// concurrent-job cap, in submission order. Called under m.mu after any
// change that frees or fills a slot.
func (m *Master) promoteLocked() {
	running := 0
	for _, js := range m.order {
		if js.state == JobRunning {
			running++
		}
	}
	for _, js := range m.order {
		if running >= m.defaults.maxActiveJobs {
			break
		}
		if js.state != JobQueued {
			continue
		}
		js.state = JobRunning
		if js.phase == "" {
			js.phase = "map"
		}
		running++
		if m.ob.Enabled() {
			m.ob.Progress("dist.map/"+js.id, len(js.mapTasks)-js.mapsLeft, len(js.mapTasks))
		}
	}
}

// Handle returns the handle for a job by ID — the way a client reattaches
// to a job after a master restart (the IDs are stable across snapshot
// recovery). Terminal jobs stay reachable on a bounded ring.
func (m *Master) Handle(id string) (*JobHandle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js, ok := m.jobs[id]; ok {
		return &JobHandle{m: m, js: js}, true
	}
	for i := len(m.retired) - 1; i >= 0; i-- {
		if m.retired[i].id == id {
			return &JobHandle{m: m, js: m.retired[i]}, true
		}
	}
	return nil, false
}

// scheduleOrderLocked returns the running jobs in dispatch order: higher
// priority first, then fewest in-flight tasks (fair sharing), then
// submission order. Called under m.mu.
func (m *Master) scheduleOrderLocked() []*jobState {
	run := make([]*jobState, 0, len(m.order))
	load := make(map[*jobState]int, len(m.order))
	for _, js := range m.order {
		if js.state == JobRunning {
			run = append(run, js)
			load[js] = js.runningTasks()
		}
	}
	sort.SliceStable(run, func(i, j int) bool {
		a, b := run[i], run[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if load[a] != load[b] {
			return load[a] < load[b]
		}
		return a.epoch < b.epoch
	})
	return run
}

// activeEpochsLocked lists every queued or running job's epoch — the
// piggyback on TaskWait/TaskDone that lets shuffle-serving workers prune
// stored output of finished jobs. Called under m.mu.
func (m *Master) activeEpochsLocked() []uint64 {
	out := make([]uint64, 0, len(m.order))
	for _, js := range m.order {
		out = append(out, js.epoch)
	}
	return out
}

// nextTask hands the polling worker a task from the running jobs, or a
// speculative backup of an aging straggler run by a different worker;
// called under m.mu.
//
// Map tasks take priority across every job (they unblock shuffles); once a
// job passes its slowstart fraction of completed maps its reduce tasks
// become eligible too, so reducers stream segments while the tail of the
// map wave is still running. Jobs are visited in fair/priority order, so
// one wide job cannot starve the rest.
func (m *Master) nextTask(workerID string) Task {
	if len(m.jobs) == 0 {
		// Nothing queued or running: the worker may exit (its store prunes
		// to nothing — no ActiveEpochs).
		return Task{Kind: TaskDone}
	}
	now := time.Now()
	order := m.scheduleOrderLocked()
	for _, js := range order {
		if task, ok := m.assignFrom(js, js.mapTasks, workerID, now); ok {
			return task
		}
	}
	for _, js := range order {
		if !js.reduceEligible() {
			continue
		}
		if task, ok := m.assignFrom(js, js.redTasks, workerID, now); ok {
			if js.phase == "map" {
				js.earlyReduces++
				m.earlyReduces++
				m.ob.Count("dist.tasks.early_reduce", 1)
			}
			return task
		}
	}
	// Nothing pending anywhere: speculate on the oldest aging straggler
	// owned by someone else (first result wins; duplicates are discarded).
	// Each job's own timeout knobs decide what "aging" means for its tasks.
	var oldest *taskState
	var oldestJob *jobState
	for _, js := range order {
		specAge := time.Duration(float64(js.taskTimeout) * js.specFraction)
		pools := [][]*taskState{js.mapTasks}
		if js.reduceEligible() {
			pools = append(pools, js.redTasks)
		}
		for _, pool := range pools {
			for _, ts := range pool {
				if ts.done || !ts.assigned || ts.assignee == workerID {
					continue
				}
				if now.Sub(ts.assignedAt) < specAge {
					continue
				}
				if oldest == nil || ts.assignedAt.Before(oldest.assignedAt) {
					oldest, oldestJob = ts, js
				}
			}
		}
	}
	if oldest != nil {
		oldestJob.speculative++
		m.speculative++
		m.ob.Count("dist.tasks.speculative", 1)
		oldest.assignedAt = now // throttle repeated speculation
		oldest.assignee = workerID
		m.emitSchedule(oldestJob, oldest, workerID, now)
		return oldest.task
	}
	return Task{Kind: TaskWait, ActiveEpochs: m.activeEpochsLocked()}
}

// emitSchedule reports one assignment's dispatch latency — ready-to-assigned
// — as a schedule phase interval attributed to the assignee; called under
// m.mu. Reissues and speculative backups emit again with the new worker, so
// every attempt's queueing delay is visible in the trace; for a queued job,
// the admission wait counts too.
func (m *Master) emitSchedule(js *jobState, ts *taskState, workerID string, now time.Time) {
	if !m.ob.Enabled() {
		return
	}
	kind := obs.KindMap
	if ts.task.Kind == TaskReduce {
		kind = obs.KindReduce
	}
	obs.EmitPhase(m.ob, obs.PhaseEvent{
		Task: obs.TaskRef{
			Job: js.desc.Workload, Kind: kind, Index: ts.task.Seq, Worker: workerID, Epoch: ts.task.Epoch,
		},
		Phase:    obs.PhaseSchedule,
		Start:    ts.readyAt,
		Duration: now.Sub(ts.readyAt),
	})
}

// assignFrom hands out the first pending or timed-out task in pool; called
// under m.mu.
func (m *Master) assignFrom(js *jobState, pool []*taskState, workerID string, now time.Time) (Task, bool) {
	for _, ts := range pool {
		if ts.done {
			continue
		}
		if ts.assigned && now.Sub(ts.assignedAt) < js.taskTimeout {
			continue
		}
		if ts.assigned {
			js.reassigned++
			m.reassigned++
			m.ob.Count("dist.tasks.reassigned", 1)
		}
		ts.assigned = true
		ts.assignee = workerID
		ts.assignedAt = now
		m.emitSchedule(js, ts, workerID, now)
		return ts.task, true
	}
	return Task{}, false
}

// completeMap records a map result and publishes the task's non-empty
// segments to the job's streaming shuffle, where already-dispatched
// reducers pick them up on their next fetch. Served output (res.Addr set)
// publishes address references — the segments stay on the worker; inline
// output publishes the blobs themselves. Duplicate completions (from
// reissued attempts) and stale completions (the job is gone) are ignored.
// Called under m.mu.
func (m *Master) completeMap(res *MapDone) {
	js := m.byEpoch[res.Epoch]
	if js == nil || js.mapTasks == nil ||
		res.Seq < 0 || res.Seq >= len(js.mapTasks) || js.mapTasks[res.Seq].done {
		return
	}
	ts := js.mapTasks[res.Seq]
	ts.done = true
	ts.assigned = false
	ts.owner = res.WorkerID
	ts.ownerAddr = res.Addr
	js.counters.Add(res.Counters)
	if res.Addr != "" {
		// Worker-served output: publish references; the accounting comes
		// from the worker's own segment headers (PartStats).
		for _, ps := range res.PartStats {
			if ps.Part < 0 || ps.Part >= len(js.partSegs) || ps.Recs == 0 {
				continue
			}
			js.partSegs[ps.Part] = append(js.partSegs[ps.Part], TaggedSegment{
				MapSeq: res.Seq, Addr: res.Addr, Owner: res.WorkerID,
			})
			js.counters.ShuffleSegments++
			js.counters.ShuffleBytes += units.Bytes(ps.Bytes)
		}
	} else {
		nonEmpty := res.NonEmpty
		if nonEmpty == nil {
			// Legacy sender: derive the availability report from the segment
			// headers (O(1) per partition, no payload decode).
			for p, part := range res.Parts {
				if n, _, err := mapreduce.SegmentStats(part); err == nil && n > 0 {
					nonEmpty = append(nonEmpty, p)
				}
			}
		}
		for _, p := range nonEmpty {
			if p < 0 || p >= len(js.partSegs) || p >= len(res.Parts) {
				continue
			}
			// The blob is forwarded to reducers untouched; only its header is
			// read, for the shuffle accounting the engine's in-process paths
			// compute from the same per-record formula.
			nrecs, segBytes, err := mapreduce.SegmentStats(res.Parts[p])
			if err != nil || nrecs == 0 {
				continue
			}
			js.partSegs[p] = append(js.partSegs[p], TaggedSegment{MapSeq: res.Seq, Data: res.Parts[p]})
			js.counters.ShuffleSegments++
			js.counters.ShuffleBytes += segBytes
		}
	}
	js.mapsLeft--
	if m.ob.Enabled() {
		m.ob.Progress("dist.map/"+js.id, len(js.mapTasks)-js.mapsLeft, len(js.mapTasks))
	}
	if js.mapsLeft == 0 && js.phase == "map" {
		js.phase = "reduce"
	}
	m.saveSnapshotLocked()
}

// fetchSegments answers one reducer's streaming fetch; called under m.mu.
// The reply is Stale — abandon the task — when the job is gone (aborted or
// finished). Complete can regress to false after a segment loss puts a map
// back in flight; fetch loops keep polling until Complete holds with every
// segment resolved.
func (m *Master) fetchSegments(args *FetchSegmentsArgs, reply *FetchSegmentsReply) {
	js := m.byEpoch[args.Epoch]
	if js == nil || js.partSegs == nil ||
		args.Partition < 0 || args.Partition >= len(js.partSegs) {
		reply.Stale = true
		return
	}
	segs := js.partSegs[args.Partition]
	cur := args.Cursor
	if cur < 0 {
		cur = 0
	}
	if cur > len(segs) {
		cur = len(segs)
	}
	if cur < len(segs) {
		reply.Segments = append([]TaggedSegment(nil), segs[cur:]...)
	}
	reply.Cursor = len(segs)
	reply.Complete = js.mapsLeft == 0
	// A reducer actively streaming is alive: refresh its lease so a long
	// fetch wait behind a slow map wave does not read as a timeout and
	// trigger a spurious reassignment.
	if args.Partition < len(js.redTasks) {
		if ts := js.redTasks[args.Partition]; ts != nil && ts.assigned && !ts.done && ts.assignee == args.WorkerID {
			ts.assignedAt = time.Now()
		}
	}
}

// completeReduce records a reduce result; duplicates and stale completions
// ignored. The last reduce finalizes the job. Called under m.mu.
func (m *Master) completeReduce(res *ReduceDone) {
	js := m.byEpoch[res.Epoch]
	if js == nil || js.redTasks == nil ||
		res.Seq < 0 || res.Seq >= len(js.redTasks) || js.redTasks[res.Seq].done ||
		res.Partition < 0 || res.Partition >= len(js.redOutputs) {
		return
	}
	js.redTasks[res.Seq].done = true
	js.redOutputs[res.Partition] = res.Output
	js.counters.Add(res.Counters)
	js.redsLeft--
	if m.ob.Enabled() {
		m.ob.Progress("dist.reduce/"+js.id, len(js.redTasks)-js.redsLeft, len(js.redTasks))
	}
	if js.redsLeft == 0 {
		m.finalizeLocked(js)
	} else {
		m.saveSnapshotLocked()
	}
}

// reportLostSegments handles a reducer's segment-loss report: every named
// map still owned by the unreachable worker is invalidated (re-queued for
// execution — its replacement publishes under the same MapSeq), and the
// owner itself is evicted so its other served output and in-flight tasks
// recover without waiting for more fetch failures. A map that already
// re-executed elsewhere is left alone — the Owner guard makes stale
// reports harmless. Called under m.mu.
func (m *Master) reportLostSegments(args *SegmentsLost) {
	now := time.Now()
	changed := false
	if js := m.byEpoch[args.Epoch]; js != nil && js.mapTasks != nil {
		for _, seq := range args.MapSeqs {
			if seq < 0 || seq >= len(js.mapTasks) {
				continue
			}
			ts := js.mapTasks[seq]
			if ts.owner != args.Owner {
				continue
			}
			if js.invalidateMap(ts, now) {
				m.recoveredMaps++
				m.ob.Count("dist.tasks.recovered", 1)
				changed = true
			}
		}
		if changed && m.ob.Enabled() {
			m.ob.Progress("dist.map/"+js.id, len(js.mapTasks)-js.mapsLeft, len(js.mapTasks))
		}
	}
	if args.Owner != "" {
		if w := m.workers.workers[args.Owner]; w != nil && !w.Evicted {
			m.evictWorkerLocked(args.Owner, now)
			changed = true
		}
	}
	if changed {
		m.saveSnapshotLocked()
	}
}

// evictWorkerLocked declares a worker dead: its in-flight assignments are
// requeued across every active job, and its completed maps whose shuffle
// output it was serving are invalidated for re-execution (inline-shipped
// output lives on the master and survives). A fresh poll resurrects the
// worker, but its revoked tasks stay revoked. Called under m.mu.
func (m *Master) evictWorkerLocked(id string, now time.Time) {
	w := m.workers.workers[id]
	if w == nil || w.Evicted {
		return
	}
	w.Evicted = true
	m.evicted++
	m.ob.Count("dist.workers.evicted", 1)
	for _, js := range m.order {
		mapsChanged := false
		requeue := func(ts *taskState) {
			ts.assigned = false
			ts.readyAt = now
			js.reassigned++
			m.reassigned++
			m.ob.Count("dist.tasks.reassigned", 1)
		}
		for _, ts := range js.mapTasks {
			if ts.assigned && !ts.done && ts.assignee == id {
				requeue(ts)
			}
			if ts.done && ts.owner == id && js.invalidateMap(ts, now) {
				m.recoveredMaps++
				m.ob.Count("dist.tasks.recovered", 1)
				mapsChanged = true
			}
		}
		for _, ts := range js.redTasks {
			if ts.assigned && !ts.done && ts.assignee == id {
				requeue(ts)
			}
		}
		if mapsChanged && m.ob.Enabled() {
			m.ob.Progress("dist.map/"+js.id, len(js.mapTasks)-js.mapsLeft, len(js.mapTasks))
		}
	}
}

// masterRPC is the RPC facade; it keeps the exported method set separate
// from the Master's own API. Every call doubles as a liveness touch for the
// calling worker.
type masterRPC struct {
	m *Master
}

// GetTask hands the polling worker its next task (or wait/done). The
// dist.rpc.get_task counter ticks on every poll — a strictly monotone
// series the live /metrics smoke test leans on.
func (r *masterRPC) GetTask(args GetTaskArgs, reply *Task) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.ob.Count("dist.rpc.get_task", 1)
	w := r.m.workers.touch(args.WorkerID, args.Addr, time.Now())
	if args.Class != "" {
		w.Class = args.Class
	}
	*reply = r.m.nextTask(args.WorkerID)
	return nil
}

// CompleteMap records a finished map task.
func (r *masterRPC) CompleteMap(res MapDone, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers.touch(res.WorkerID, res.Addr, time.Now())
	r.m.completeMap(&res)
	return nil
}

// FetchSegments streams one partition's shuffle segments to the fetching
// reducer, from its cursor forward. Workers call it in a loop until the
// reply is Complete (map wave drained, every segment delivered) or Stale
// (the job is gone; abandon the task).
func (r *masterRPC) FetchSegments(args FetchSegmentsArgs, reply *FetchSegmentsReply) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers.touch(args.WorkerID, "", time.Now())
	r.m.fetchSegments(&args, reply)
	return nil
}

// CompleteReduce records a finished reduce task.
func (r *masterRPC) CompleteReduce(res ReduceDone, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers.touch(res.WorkerID, "", time.Now())
	r.m.completeReduce(&res)
	return nil
}

// ReportFailure requeues a task whose worker hit an execution error: the
// assignment is cleared so the next poll can hand it out again. Stale
// reports (the job is gone) are ignored.
func (r *masterRPC) ReportFailure(f TaskFailed, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers.touch(f.WorkerID, "", time.Now())
	js := r.m.byEpoch[f.Epoch]
	if js == nil {
		return nil
	}
	pool := js.mapTasks
	if f.Kind == TaskReduce {
		pool = js.redTasks
	}
	if f.Seq < 0 || f.Seq >= len(pool) || pool[f.Seq] == nil || pool[f.Seq].done {
		return nil
	}
	ts := pool[f.Seq]
	if ts.assigned && ts.assignee == f.WorkerID {
		ts.assigned = false
		js.reassigned++
		r.m.reassigned++
		r.m.ob.Count("dist.tasks.reassigned", 1)
	}
	return nil
}

// ReportLostSegments records shuffle segments a reducer could not fetch:
// the affected maps re-execute and the unreachable owner is evicted.
func (r *masterRPC) ReportLostSegments(args SegmentsLost, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers.touch(args.WorkerID, "", time.Now())
	r.m.reportLostSegments(&args)
	return nil
}

// Submit accepts a remote job submission over RPC and blocks until the job
// completes, returning the full result to the client.
func (r *masterRPC) Submit(args SubmitArgs, reply *mapreduce.Result) error {
	res, err := r.m.SubmitCtx(context.Background(), args.Desc, args.Input, args.BlockSize)
	if err != nil {
		return err
	}
	*reply = *res
	return nil
}

// SortedWorkerIDs returns the known worker ids (testing/observability).
func (m *Master) SortedWorkerIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers.ids()
}
