package dist

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/obs"
)

// taskState tracks one task attempt's lifecycle in the master's tables.
type taskState struct {
	task       Task
	assigned   bool
	assignee   string
	assignedAt time.Time
	done       bool
	// readyAt is when the task became dispatchable (job submission); the
	// gap to the first assignment is the schedule phase. For reduce tasks it
	// includes the slowstart gate by design — that wait is real dispatch
	// latency the paper's shuffle accounting has to see.
	readyAt time.Time
}

// Master is the job coordinator. One master runs one job at a time
// (Submit); workers connect over TCP and poll for tasks.
type Master struct {
	mu sync.Mutex

	registry        *Registry
	listener        net.Listener
	server          *rpc.Server
	taskTimeout     time.Duration
	specFraction    float64
	reduceSlowstart float64
	ob              obs.Observer
	closed          bool

	// Per-job state. epoch is the job generation: it is bumped on every
	// submission and on every abort, and every Task carries it, so
	// completion/failure reports from a previous (aborted or finished) job
	// can never be recorded against the current one.
	epoch    uint64
	running  bool
	desc     JobDescriptor
	nparts   int
	mapTasks []*taskState
	// partSegs is the streaming shuffle: per partition, the sorted segments
	// published by completed map tasks, tagged with the producing task's
	// Seq. Reducers stream it with FetchSegments while maps are running.
	partSegs [][]TaggedSegment
	mapsLeft int
	redTasks []*taskState
	// redOutputs holds each partition's output as a wire-encoded segment
	// blob, decoded once when the job completes.
	redOutputs   [][]byte
	redsLeft     int
	counters     mapreduce.Counters
	reassigned   int
	speculative  int
	earlyReduces int
	phase        string // "map" | "reduce" | "idle"
	doneCh       chan struct{}
	workers      map[string]time.Time
}

// NewMaster starts a master listening on addr ("127.0.0.1:0" for an
// ephemeral port). taskTimeout bounds how long a task may stay assigned
// without completion before it is reissued to another worker; idle workers
// additionally receive speculative copies of tasks that have been running
// for more than half the timeout.
//
// Deprecated: use StartMaster with WithTaskTimeout; this wrapper remains
// for source compatibility with the positional API.
func NewMaster(addr string, taskTimeout time.Duration) (*Master, error) {
	return StartMaster(addr, WithTaskTimeout(taskTimeout))
}

// StartMaster starts a master listening on addr ("127.0.0.1:0" for an
// ephemeral port), configured by functional options: WithTaskTimeout
// bounds unfinished assignments before reissue, WithSpeculativeFraction
// tunes when idle workers receive backup copies of stragglers, and
// WithObserver attaches telemetry (submit spans, phase progress,
// reassignment/speculation counters).
func StartMaster(addr string, opts ...Option) (*Master, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: master listen: %w", err)
	}
	m := &Master{
		registry:        NewRegistry(),
		listener:        ln,
		server:          rpc.NewServer(),
		taskTimeout:     cfg.taskTimeout,
		specFraction:    cfg.specFraction,
		reduceSlowstart: cfg.reduceSlowstart,
		ob:              cfg.observer,
		phase:           "idle",
		workers:         make(map[string]time.Time),
	}
	if err := m.server.RegisterName("Master", &masterRPC{m: m}); err != nil {
		ln.Close()
		return nil, err
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the master's listen address for workers to dial.
func (m *Master) Addr() string { return m.listener.Addr().String() }

// Close stops accepting connections; subsequent submissions fail with
// ErrMasterClosed.
func (m *Master) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return m.listener.Close()
}

// Registry exposes the job registry for custom registrations.
func (m *Master) Registry() *Registry { return m.registry }

func (m *Master) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		go m.server.ServeConn(conn)
	}
}

// Stats reports job-control counters for observability and tests.
type Stats struct {
	// Workers is the number of distinct workers that have polled.
	Workers int
	// Reassigned is the number of task attempts reissued after timeout.
	Reassigned int
	// Speculative is the number of backup task attempts launched for
	// still-running stragglers.
	Speculative int
	// EarlyReduces is the number of reduce tasks dispatched before the map
	// wave had fully drained (slowstart-gated streaming shuffle).
	EarlyReduces int
}

// Stats returns the master's current statistics.
func (m *Master) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Workers:      len(m.workers),
		Reassigned:   m.reassigned,
		Speculative:  m.speculative,
		EarlyReduces: m.earlyReduces,
	}
}

// Submit runs one job across the connected workers: the input is split
// into record-aligned chunks of roughly blockSize bytes (one map task
// each), map outputs are shuffled master-side, and reduce partitions are
// dispatched as reduce tasks. Submit blocks until the job completes. It is
// SubmitCtx with a background context.
func (m *Master) Submit(desc JobDescriptor, input []byte, blockSize int) (*mapreduce.Result, error) {
	return m.SubmitCtx(context.Background(), desc, input, blockSize)
}

// SubmitCtx is Submit with cancellation: a cancelled context aborts the
// job — the master returns to idle, workers polling for the next task are
// told the job is over, and the error wraps ctx.Err(). The master's
// Observer (WithObserver) receives a "dist.submit" span covering the
// whole job.
func (m *Master) SubmitCtx(ctx context.Context, desc JobDescriptor, input []byte, blockSize int) (*mapreduce.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: submit cancelled: %w", err)
	}
	if desc.NumReducers < 1 {
		return nil, fmt.Errorf("%w: need at least one reducer", ErrInvalidJob)
	}
	// Validate the descriptor builds locally before distributing, and
	// prepare sampler/f-list auxiliary data.
	if err := PrepareAux(&desc, input); err != nil {
		return nil, err
	}
	if _, err := m.registry.Build(desc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidJob, err)
	}
	chunks := mapreduce.SplitInput(input, blockSize)
	if len(chunks) == 0 {
		return nil, ErrEmptyInput
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrMasterClosed
	}
	if m.running {
		m.mu.Unlock()
		return nil, ErrJobRunning
	}
	m.epoch++
	m.running = true
	m.desc = desc
	m.nparts = desc.NumReducers
	m.mapTasks = make([]*taskState, len(chunks))
	m.partSegs = make([][]TaggedSegment, desc.NumReducers)
	m.mapsLeft = len(chunks)
	now := time.Now()
	for i, c := range chunks {
		m.mapTasks[i] = &taskState{task: Task{
			Kind: TaskMap, Epoch: m.epoch, Seq: i, Job: desc, NParts: desc.NumReducers, SplitData: c,
		}, readyAt: now}
	}
	// Reduce tasks exist from the start: they carry no shuffle data (workers
	// stream segments with FetchSegments), so they can be dispatched as soon
	// as the slowstart threshold of completed maps is met.
	m.redTasks = make([]*taskState, desc.NumReducers)
	for p := 0; p < desc.NumReducers; p++ {
		m.redTasks[p] = &taskState{task: Task{
			Kind: TaskReduce, Epoch: m.epoch, Seq: p, Job: desc, NParts: desc.NumReducers, Partition: p,
		}, readyAt: now}
	}
	m.redOutputs = make([][]byte, desc.NumReducers)
	m.redsLeft = desc.NumReducers
	m.counters = mapreduce.Counters{}
	m.phase = "map"
	m.doneCh = make(chan struct{})
	done := m.doneCh
	m.mu.Unlock()

	var sp obs.Span
	if m.ob.Enabled() {
		sp = obs.Start(m.ob, "dist.submit",
			obs.Str("job", desc.Workload),
			obs.Int("maps", int64(len(chunks))),
			obs.Int("reducers", int64(desc.NumReducers)))
		m.ob.Progress("dist.map", 0, len(chunks))
	}

	select {
	case <-done:
	case <-ctx.Done():
		// Abort: return the master to idle so pollers wind down (nextTask
		// answers TaskDone while idle) and a new submission can start. The
		// epoch bump makes the aborted job's in-flight completions and
		// failure reports stale, so they can never be recorded against a
		// later job; dropping the task tables releases the job's split and
		// shuffle data instead of pinning it until the next Submit.
		m.mu.Lock()
		m.epoch++
		m.running = false
		m.phase = "idle"
		m.clearJobLocked()
		m.mu.Unlock()
		sp.End()
		return nil, fmt.Errorf("dist: job %s aborted: %w", desc.Workload, ctx.Err())
	}
	sp.End()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	m.phase = "idle"
	// Decode the partition outputs back to flat segments at the public
	// Result boundary; string records are never materialized — a caller
	// that wants them pays at Result.Output time.
	output := make([]mapreduce.Segment, len(m.redOutputs))
	for p, blob := range m.redOutputs {
		seg, err := mapreduce.DecodeSegment(blob)
		if err != nil {
			m.clearJobLocked()
			return nil, fmt.Errorf("dist: job %s: partition %d output: %w", desc.Workload, p, err)
		}
		output[p] = seg
	}
	res := mapreduce.NewResult(output, m.counters)
	res.Counters.MapTasks = len(chunks)
	res.Counters.ReduceTasks = desc.NumReducers
	m.clearJobLocked()
	return res, nil
}

// clearJobLocked drops the finished (or aborted) job's task tables and
// buffered outputs so split and shuffle data are not pinned in memory
// until the next submission. Called under m.mu with phase == "idle".
func (m *Master) clearJobLocked() {
	m.mapTasks = nil
	m.partSegs = nil
	m.redTasks = nil
	m.redOutputs = nil
}

// nextTask hands out a pending or timed-out task, or a speculative backup
// of an aging straggler run by a different worker; called under m.mu.
//
// Map tasks take priority; once the slowstart fraction of maps has
// completed, reduce tasks become eligible too, so reducers start streaming
// segments while the tail of the map wave is still running.
func (m *Master) nextTask(workerID string) Task {
	if m.phase == "idle" {
		// No job in flight (finished or aborted): tell the poller the job is
		// over before scanning any leftover tables, so an aborted job's
		// undone tasks are never reissued as dead work.
		return Task{Kind: TaskDone}
	}
	now := time.Now()
	if task, ok := m.assignFrom(m.mapTasks, workerID, now); ok {
		return task
	}
	if m.reduceEligible() {
		if task, ok := m.assignFrom(m.redTasks, workerID, now); ok {
			if m.phase == "map" {
				m.earlyReduces++
				m.ob.Count("dist.tasks.early_reduce", 1)
			}
			return task
		}
	}
	// Nothing pending: speculate on the oldest aging straggler owned by
	// someone else (first result wins; duplicates are discarded).
	pools := [][]*taskState{m.mapTasks}
	if m.reduceEligible() {
		pools = append(pools, m.redTasks)
	}
	specAge := time.Duration(float64(m.taskTimeout) * m.specFraction)
	var oldest *taskState
	for _, pool := range pools {
		for _, ts := range pool {
			if ts.done || !ts.assigned || ts.assignee == workerID {
				continue
			}
			if now.Sub(ts.assignedAt) < specAge {
				continue
			}
			if oldest == nil || ts.assignedAt.Before(oldest.assignedAt) {
				oldest = ts
			}
		}
	}
	if oldest != nil {
		m.speculative++
		m.ob.Count("dist.tasks.speculative", 1)
		oldest.assignedAt = now // throttle repeated speculation
		oldest.assignee = workerID
		m.emitSchedule(oldest, workerID, now)
		return oldest.task
	}
	return Task{Kind: TaskWait}
}

// emitSchedule reports one assignment's dispatch latency — ready-to-assigned
// — as a schedule phase interval attributed to the assignee; called under
// m.mu. Reissues and speculative backups emit again with the new worker, so
// every attempt's queueing delay is visible in the trace.
func (m *Master) emitSchedule(ts *taskState, workerID string, now time.Time) {
	if !m.ob.Enabled() {
		return
	}
	kind := obs.KindMap
	if ts.task.Kind == TaskReduce {
		kind = obs.KindReduce
	}
	obs.EmitPhase(m.ob, obs.PhaseEvent{
		Task: obs.TaskRef{
			Job: m.desc.Workload, Kind: kind, Index: ts.task.Seq, Worker: workerID, Epoch: ts.task.Epoch,
		},
		Phase:    obs.PhaseSchedule,
		Start:    ts.readyAt,
		Duration: now.Sub(ts.readyAt),
	})
}

// assignFrom hands out the first pending or timed-out task in pool; called
// under m.mu.
func (m *Master) assignFrom(pool []*taskState, workerID string, now time.Time) (Task, bool) {
	for _, ts := range pool {
		if ts.done {
			continue
		}
		if ts.assigned && now.Sub(ts.assignedAt) < m.taskTimeout {
			continue
		}
		if ts.assigned {
			m.reassigned++
			m.ob.Count("dist.tasks.reassigned", 1)
		}
		ts.assigned = true
		ts.assignee = workerID
		ts.assignedAt = now
		m.emitSchedule(ts, workerID, now)
		return ts.task, true
	}
	return Task{}, false
}

// reduceEligible reports whether reduce tasks may be dispatched: always in
// the reduce phase, and during the map phase once the slowstart fraction of
// maps has completed. Called under m.mu.
func (m *Master) reduceEligible() bool {
	if m.phase == "reduce" {
		return true
	}
	if m.phase != "map" || len(m.mapTasks) == 0 {
		return false
	}
	done := len(m.mapTasks) - m.mapsLeft
	return float64(done) >= m.reduceSlowstart*float64(len(m.mapTasks))
}

// completeMap records a map result and publishes the task's non-empty
// segments to the streaming shuffle, where already-dispatched reducers pick
// them up on their next fetch. Duplicate completions (from reissued
// attempts) and stale completions (wrong epoch: the reporting worker was
// running a job that has since been aborted) are ignored. Called under
// m.mu.
func (m *Master) completeMap(res *MapDone) {
	if res.Epoch != m.epoch || m.mapTasks == nil ||
		res.Seq < 0 || res.Seq >= len(m.mapTasks) || m.mapTasks[res.Seq].done {
		return
	}
	m.mapTasks[res.Seq].done = true
	m.counters.Add(res.Counters)
	nonEmpty := res.NonEmpty
	if nonEmpty == nil {
		// Legacy sender: derive the availability report from the segment
		// headers (O(1) per partition, no payload decode).
		for p, part := range res.Parts {
			if n, _, err := mapreduce.SegmentStats(part); err == nil && n > 0 {
				nonEmpty = append(nonEmpty, p)
			}
		}
	}
	for _, p := range nonEmpty {
		if p < 0 || p >= len(m.partSegs) || p >= len(res.Parts) {
			continue
		}
		// The blob is forwarded to reducers untouched; only its header is
		// read, for the shuffle accounting the engine's in-process paths
		// compute from the same per-record formula.
		nrecs, segBytes, err := mapreduce.SegmentStats(res.Parts[p])
		if err != nil || nrecs == 0 {
			continue
		}
		m.partSegs[p] = append(m.partSegs[p], TaggedSegment{MapSeq: res.Seq, Data: res.Parts[p]})
		m.counters.ShuffleSegments++
		m.counters.ShuffleBytes += segBytes
	}
	m.mapsLeft--
	if m.ob.Enabled() {
		m.ob.Progress("dist.map", len(m.mapTasks)-m.mapsLeft, len(m.mapTasks))
	}
	if m.mapsLeft == 0 && m.phase == "map" {
		m.phase = "reduce"
	}
}

// fetchSegments answers one reducer's streaming fetch; called under m.mu.
// The reply is Stale — abandon the task — when the epoch is wrong or the
// job's tables are gone (aborted or finished).
func (m *Master) fetchSegments(args *FetchSegmentsArgs, reply *FetchSegmentsReply) {
	if args.Epoch != m.epoch || m.partSegs == nil ||
		args.Partition < 0 || args.Partition >= len(m.partSegs) {
		reply.Stale = true
		return
	}
	segs := m.partSegs[args.Partition]
	cur := args.Cursor
	if cur < 0 {
		cur = 0
	}
	if cur > len(segs) {
		cur = len(segs)
	}
	if cur < len(segs) {
		reply.Segments = append([]TaggedSegment(nil), segs[cur:]...)
	}
	reply.Cursor = len(segs)
	reply.Complete = m.mapsLeft == 0
	// A reducer actively streaming is alive: refresh its lease so a long
	// fetch wait behind a slow map wave does not read as a timeout and
	// trigger a spurious reassignment.
	if args.Partition < len(m.redTasks) {
		if ts := m.redTasks[args.Partition]; ts != nil && ts.assigned && !ts.done && ts.assignee == args.WorkerID {
			ts.assignedAt = time.Now()
		}
	}
}

// completeReduce records a reduce result; duplicates and stale (wrong
// epoch) completions ignored. Early completions — while the tail of the map
// wave is still running — are legitimate only in theory (a reducer cannot
// finish before its shuffle is Complete), so the guard checks the task
// tables rather than the phase. Called under m.mu.
func (m *Master) completeReduce(res *ReduceDone) {
	if res.Epoch != m.epoch || m.redTasks == nil ||
		res.Seq < 0 || res.Seq >= len(m.redTasks) || m.redTasks[res.Seq].done {
		return
	}
	m.redTasks[res.Seq].done = true
	m.redOutputs[res.Partition] = res.Output
	m.counters.Add(res.Counters)
	m.redsLeft--
	if m.ob.Enabled() {
		m.ob.Progress("dist.reduce", len(m.redTasks)-m.redsLeft, len(m.redTasks))
	}
	if m.redsLeft == 0 {
		m.phase = "idle"
		close(m.doneCh)
	}
}

// masterRPC is the RPC facade; it keeps the exported method set separate
// from the Master's own API.
type masterRPC struct {
	m *Master
}

// GetTask hands the polling worker its next task (or wait/done). The
// dist.rpc.get_task counter ticks on every poll — a strictly monotone
// series the live /metrics smoke test leans on.
func (r *masterRPC) GetTask(args GetTaskArgs, reply *Task) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.ob.Count("dist.rpc.get_task", 1)
	r.m.workers[args.WorkerID] = time.Now()
	*reply = r.m.nextTask(args.WorkerID)
	return nil
}

// CompleteMap records a finished map task.
func (r *masterRPC) CompleteMap(res MapDone, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.completeMap(&res)
	return nil
}

// FetchSegments streams one partition's shuffle segments to the fetching
// reducer, from its cursor forward. Workers call it in a loop until the
// reply is Complete (map wave drained, every segment delivered) or Stale
// (the job is gone; abandon the task).
func (r *masterRPC) FetchSegments(args FetchSegmentsArgs, reply *FetchSegmentsReply) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.workers[args.WorkerID] = time.Now()
	r.m.fetchSegments(&args, reply)
	return nil
}

// CompleteReduce records a finished reduce task.
func (r *masterRPC) CompleteReduce(res ReduceDone, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.completeReduce(&res)
	return nil
}

// ReportFailure requeues a task whose worker hit an execution error: the
// assignment is cleared so the next poll can hand it out again. Stale
// reports (wrong epoch) are ignored.
func (r *masterRPC) ReportFailure(f TaskFailed, _ *Ack) error {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	if f.Epoch != r.m.epoch {
		return nil
	}
	pool := r.m.mapTasks
	if f.Kind == TaskReduce {
		pool = r.m.redTasks
	}
	if f.Seq < 0 || f.Seq >= len(pool) || pool[f.Seq] == nil || pool[f.Seq].done {
		return nil
	}
	ts := pool[f.Seq]
	if ts.assigned && ts.assignee == f.WorkerID {
		ts.assigned = false
		r.m.reassigned++
		r.m.ob.Count("dist.tasks.reassigned", 1)
	}
	return nil
}

// Submit accepts a remote job submission over RPC and blocks until the job
// completes, returning the full result to the client.
func (r *masterRPC) Submit(args SubmitArgs, reply *mapreduce.Result) error {
	res, err := r.m.Submit(args.Desc, args.Input, args.BlockSize)
	if err != nil {
		return err
	}
	*reply = *res
	return nil
}

// SortedWorkerIDs returns the known worker ids (testing/observability).
func (m *Master) SortedWorkerIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
