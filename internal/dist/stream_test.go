package dist

import (
	"context"
	"errors"
	"net/rpc"
	"testing"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// TestEarlyReduceDispatchAndStreamingFetch drives the master by hand: it
// steals every map task, completes just past the slowstart fraction, and
// asserts that a reduce task is dispatched while the map wave is still
// running and that FetchSegments streams the published segments
// incrementally — Complete only once the last map has reported.
func TestEarlyReduceDispatchAndStreamingFetch(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 3)
	desc := JobDescriptor{Workload: "wordcount", NumReducers: 2}
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second), WithReduceSlowstart(0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	client, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := m.SubmitCtx(ctx, desc, input, 2*1024)
		errCh <- err
	}()

	job, err := NewRegistry().Build(desc)
	if err != nil {
		t.Fatal(err)
	}

	// Steal every map task; polling must then answer TaskWait (no reduce is
	// eligible before the slowstart threshold).
	var maps []Task
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var task Task
		if err := client.Call("Master.GetTask", GetTaskArgs{WorkerID: "tester"}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind == TaskMap {
			maps = append(maps, task)
			continue
		}
		if task.Kind == TaskWait && len(maps) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(maps) < 3 {
		t.Fatalf("stole %d map tasks, need >= 3 for a split wave", len(maps))
	}

	complete := func(task Task) {
		t.Helper()
		segs, counters, err := mapreduce.ExecuteMapSplit(job, task.SplitData, task.NParts)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([][]byte, len(segs))
		for p, seg := range segs {
			parts[p] = mapreduce.EncodeSegment(seg)
		}
		// NonEmpty deliberately omitted: the master must derive it from the
		// segment headers (the legacy-sender path).
		if err := client.Call("Master.CompleteMap", MapDone{
			WorkerID: "tester", Epoch: task.Epoch, Seq: task.Seq, Parts: parts, Counters: counters,
		}, &Ack{}); err != nil {
			t.Fatal(err)
		}
	}
	half := (len(maps) + 1) / 2
	for _, task := range maps[:half] {
		complete(task)
	}

	// Past slowstart with maps still outstanding: the next poll must hand
	// out a reduce task.
	var red Task
	if err := client.Call("Master.GetTask", GetTaskArgs{WorkerID: "tester"}, &red); err != nil {
		t.Fatal(err)
	}
	if red.Kind != TaskReduce {
		t.Fatalf("poll past slowstart returned %q, want %q", red.Kind, TaskReduce)
	}
	if st := m.Stats(); st.EarlyReduces < 1 {
		t.Errorf("EarlyReduces = %d, want >= 1", st.EarlyReduces)
	}

	// The stream so far: published segments, but not Complete.
	var r1 FetchSegmentsReply
	if err := client.Call("Master.FetchSegments", FetchSegmentsArgs{
		WorkerID: "tester", Epoch: red.Epoch, Partition: red.Partition,
	}, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Stale {
		t.Fatal("fetch during the job reported Stale")
	}
	if r1.Complete {
		t.Fatalf("fetch Complete with %d/%d maps done", half, len(maps))
	}

	// A wrong-epoch fetch — a worker left over from an aborted job — must
	// be told Stale, not fed the current job's data.
	var stale FetchSegmentsReply
	if err := client.Call("Master.FetchSegments", FetchSegmentsArgs{
		WorkerID: "ghost", Epoch: red.Epoch + 1, Partition: red.Partition,
	}, &stale); err != nil {
		t.Fatal(err)
	}
	if !stale.Stale {
		t.Error("wrong-epoch fetch not reported Stale")
	}

	// Drain the map wave; the stream must then complete from the cursor.
	for _, task := range maps[half:] {
		complete(task)
	}
	var r2 FetchSegmentsReply
	if err := client.Call("Master.FetchSegments", FetchSegmentsArgs{
		WorkerID: "tester", Epoch: red.Epoch, Partition: red.Partition, Cursor: r1.Cursor,
	}, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Stale || !r2.Complete {
		t.Fatalf("fetch after map drain: stale=%v complete=%v, want complete", r2.Stale, r2.Complete)
	}
	segs := append(append([]TaggedSegment(nil), r1.Segments...), r2.Segments...)
	seen := map[int]bool{}
	for _, s := range segs {
		if s.MapSeq < 0 || s.MapSeq >= len(maps) {
			t.Fatalf("segment tagged with MapSeq %d outside the wave", s.MapSeq)
		}
		if seen[s.MapSeq] {
			t.Fatalf("map %d published twice to partition %d", s.MapSeq, red.Partition)
		}
		seen[s.MapSeq] = true
		seg, err := mapreduce.DecodeSegment(s.Data)
		if err != nil {
			t.Fatalf("map %d published an undecodable segment: %v", s.MapSeq, err)
		}
		if seg.Len() == 0 {
			t.Fatalf("map %d published an empty segment", s.MapSeq)
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments streamed for a wordcount partition")
	}

	// Abort: the epoch guard must extend to the segment stream.
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted submit: %v, want wrapped context.Canceled", err)
	}
	var r3 FetchSegmentsReply
	if err := client.Call("Master.FetchSegments", FetchSegmentsArgs{
		WorkerID: "tester", Epoch: red.Epoch, Partition: red.Partition, Cursor: r2.Cursor,
	}, &r3); err != nil {
		t.Fatal(err)
	}
	if !r3.Stale {
		t.Error("fetch after abort not reported Stale")
	}
}

// TestReduceSlowstartOneRestoresBarrier checks the strict-barrier opt-out:
// with slowstart 1.0 no reduce may be dispatched until every map is done,
// yet the job still completes.
func TestReduceSlowstartOneRestoresBarrier(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 9)
	m, err := StartMaster("127.0.0.1:0", WithTaskTimeout(5*time.Second), WithReduceSlowstart(1.0))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := ConnectWorker("w0", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run() }()

	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if res.Counters.ReduceTasks != 2 {
		t.Errorf("ReduceTasks = %d, want 2", res.Counters.ReduceTasks)
	}
	if st := m.Stats(); st.EarlyReduces != 0 {
		t.Errorf("EarlyReduces = %d with slowstart 1.0, want 0", st.EarlyReduces)
	}
}
