package dist

// options.go holds the functional options shared by StartMaster and
// ConnectWorker, plus the package's sentinel errors. The positional
// constructors (NewMaster, NewWorker) remain as deprecated wrappers.

import (
	"errors"
	"time"

	"heterohadoop/internal/obs"
)

// Sentinel errors: callers branch with errors.Is instead of matching
// message strings.
var (
	// ErrMasterClosed marks a submission against a master whose listener
	// has been closed.
	ErrMasterClosed = errors.New("dist: master closed")
	// ErrJobRunning marks a submission while another job is in flight.
	//
	// Deprecated: the master is multi-tenant; concurrent submissions queue
	// instead of failing. Kept for errors.Is source compatibility.
	ErrJobRunning = errors.New("dist: a job is already running")
	// ErrEmptyInput marks a submission whose input splits to zero chunks.
	ErrEmptyInput = errors.New("dist: empty input")
	// ErrInvalidJob marks a job descriptor that fails validation.
	ErrInvalidJob = errors.New("dist: invalid job")
	// ErrQueueFull marks a submission rejected by admission control: the
	// master already holds WithMaxQueuedJobs jobs.
	ErrQueueFull = errors.New("dist: job queue full")
	// ErrJobCancelled marks a job aborted through JobHandle.Cancel.
	ErrJobCancelled = errors.New("dist: job cancelled")
	// ErrUnknownJob marks a lookup for a job ID the master has never seen.
	ErrUnknownJob = errors.New("dist: unknown job")
)

// config carries the tunables behind the functional options. Master and
// worker read the fields they care about and ignore the rest, so the
// option names are shared (WithObserver works on both).
type config struct {
	taskTimeout     time.Duration
	specFraction    float64
	reduceSlowstart float64
	pollInterval    time.Duration
	observer        obs.Observer
	maxActiveJobs   int
	maxQueuedJobs   int
	workerTimeout   time.Duration
	snapshotPath    string
	serveShuffle    bool
	spillDir        string
	coreClass       string
}

func defaultConfig() config {
	return config{
		taskTimeout:     5 * time.Second,
		specFraction:    0.5,
		reduceSlowstart: 0.5,
		pollInterval:    10 * time.Millisecond,
		observer:        obs.Nop,
		maxActiveJobs:   4,
		maxQueuedJobs:   64,
		workerTimeout:   30 * time.Second,
		serveShuffle:    true,
	}
}

// Option configures a Master (StartMaster) or Worker (ConnectWorker).
// Options irrelevant to the component they are passed to are ignored.
type Option func(*config)

// WithTaskTimeout bounds how long a task may stay assigned without
// completion before the master reissues it. Non-positive values keep the
// default (5s).
func WithTaskTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.taskTimeout = d
		}
	}
}

// WithSpeculativeFraction sets the in-flight age — as a fraction of the
// task timeout — after which an idle worker is handed a backup copy of a
// still-running task. Values outside (0, 1] keep the default (0.5).
func WithSpeculativeFraction(f float64) Option {
	return func(c *config) {
		if f > 0 && f <= 1 {
			c.specFraction = f
		}
	}
}

// WithReduceSlowstart sets the fraction of map tasks that must have
// completed before reduce tasks become eligible for dispatch while the map
// wave is still running — Hadoop's mapreduce.job.reduce.slowstart.
// completedmaps. 1 restores the strict barrier (reduces only after every
// map); values outside (0, 1] keep the default (0.5).
func WithReduceSlowstart(f float64) Option {
	return func(c *config) {
		if f > 0 && f <= 1 {
			c.reduceSlowstart = f
		}
	}
}

// WithPollInterval sets the worker's idle poll spacing (the heartbeat
// period). Non-positive values keep the default (10ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.pollInterval = d
		}
	}
}

// WithObserver attaches an Observer: the master emits dist.submit spans,
// map/reduce progress and reassignment/speculation counters; the worker
// emits dist.task spans and failure-report counters. A nil observer keeps
// the default (obs.Nop).
func WithObserver(o obs.Observer) Option {
	return func(c *config) {
		if o != nil {
			c.observer = o
		}
	}
}

// WithMaxConcurrentJobs caps how many admitted jobs run (are offered
// tasks) at once; further submissions queue until a slot frees. Values
// below 1 keep the default (4).
func WithMaxConcurrentJobs(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.maxActiveJobs = n
		}
	}
}

// WithMaxQueuedJobs caps the total jobs the master holds (running plus
// queued); Submit beyond it fails with ErrQueueFull. Values below 1 keep
// the default (64).
func WithMaxQueuedJobs(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.maxQueuedJobs = n
		}
	}
}

// WithWorkerTimeout sets the liveness window: a worker silent (no poll,
// fetch or completion) for longer is evicted — its in-flight tasks are
// requeued and its served map output is re-executed. Non-positive values
// keep the default (30s).
func WithWorkerTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.workerTimeout = d
		}
	}
}

// WithSnapshotPath makes the master persist a versioned state snapshot
// (jobs, task tables, worker registry) to path on every mutation, and
// StartMaster resume from an existing snapshot at that path — a restarted
// master picks its in-flight jobs back up. Empty keeps snapshots off.
func WithSnapshotPath(path string) Option {
	return func(c *config) { c.snapshotPath = path }
}

// WithSpillDir gives a shuffle-serving worker an out-of-core map-output
// store: completed map output is written to a compressed, checksummed
// segment file under a per-worker temp directory inside dir instead of
// staying resident, and reducers pull it frame by frame (FetchPartArgs.
// Frame). The worker's resident shuffle state drops from the full map
// output to one frame per in-flight fetch. A spill file that fails
// validation on read is answered as segment loss, so the master re-executes
// the owning map — the same recovery path as a dead worker. Empty keeps the
// in-memory store; ignored when shuffle serving is off (inline output must
// outlive the worker).
func WithSpillDir(dir string) Option {
	return func(c *config) { c.spillDir = dir }
}

// WithCoreClass declares the worker's core class ("big", "little", or a
// custom profile name). The worker stamps it on every phase event it emits
// — making traces self-describing for energy attribution — and reports it
// in each poll, so the master's worker registry knows which class every
// node is (the placement input the EDP-aware scheduler consumes). Empty
// keeps the class undeclared.
func WithCoreClass(class string) Option {
	return func(c *config) { c.coreClass = class }
}

// WithShuffleServing toggles worker-served shuffle: when on (the default)
// a worker keeps its map output local and serves it to reducers directly,
// the way Hadoop map output stays on the mapper's node; when off the
// worker ships output inline in MapDone (the segments then survive the
// worker, at the cost of master memory).
func WithShuffleServing(on bool) Option {
	return func(c *config) { c.serveShuffle = on }
}
