package dist

import "time"

// status.go exposes the master's job and task tables as snapshot values for
// the live HTTP plane (internal/obs/httpd): /jobs serves JobStatus, /tasks
// serves TaskStatuses. Both are lock-scoped copies — callers never see the
// live tables.

// JobStatus is a point-in-time summary of the master's current (or last)
// job.
type JobStatus struct {
	// Running reports whether a job is in flight.
	Running bool `json:"running"`
	// Epoch is the job generation; it distinguishes restarted jobs with the
	// same workload name.
	Epoch uint64 `json:"epoch"`
	// Workload is the submitted job's workload name ("" when idle and
	// nothing has run).
	Workload string `json:"workload,omitempty"`
	// Phase is the scheduler phase: "map", "reduce" or "idle".
	Phase string `json:"phase"`
	// MapsDone / MapsTotal and ReducesDone / ReducesTotal are task-level
	// progress.
	MapsDone     int `json:"maps_done"`
	MapsTotal    int `json:"maps_total"`
	ReducesDone  int `json:"reduces_done"`
	ReducesTotal int `json:"reduces_total"`
	// Workers is the number of distinct workers that have polled.
	Workers int `json:"workers"`
	// Reassigned, Speculative and EarlyReduces mirror Stats.
	Reassigned   int `json:"reassigned"`
	Speculative  int `json:"speculative"`
	EarlyReduces int `json:"early_reduces"`
}

// TaskStatus is a point-in-time view of one task slot in the master's
// tables.
type TaskStatus struct {
	// Kind is "map" or "reduce"; Seq is the task's slot (split index or
	// partition).
	Kind string `json:"kind"`
	Seq  int    `json:"seq"`
	// Assigned reports an in-flight assignment; Assignee is the worker
	// holding it.
	Assigned bool   `json:"assigned"`
	Assignee string `json:"assignee,omitempty"`
	// RunningForMS is how long the current assignment has been out, in
	// milliseconds (0 when unassigned or done).
	RunningForMS int64 `json:"running_for_ms"`
	// Done reports completion.
	Done bool `json:"done"`
}

// JobStatus returns the master's current job summary.
func (m *Master) JobStatus() JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStatus{
		Running:      m.running,
		Epoch:        m.epoch,
		Workload:     m.desc.Workload,
		Phase:        m.phase,
		MapsTotal:    len(m.mapTasks),
		ReducesTotal: len(m.redTasks),
		Workers:      len(m.workers),
		Reassigned:   m.reassigned,
		Speculative:  m.speculative,
		EarlyReduces: m.earlyReduces,
	}
	if m.mapTasks != nil {
		st.MapsDone = len(m.mapTasks) - m.mapsLeft
	}
	if m.redTasks != nil {
		st.ReducesDone = len(m.redTasks) - m.redsLeft
	}
	return st
}

// TaskStatuses returns a snapshot of every task slot of the current job, map
// tasks first, in slot order. It is empty between jobs (the tables are
// dropped when a job finishes or aborts).
func (m *Master) TaskStatuses() []TaskStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]TaskStatus, 0, len(m.mapTasks)+len(m.redTasks))
	appendPool := func(pool []*taskState, kind string) {
		for _, ts := range pool {
			st := TaskStatus{
				Kind: kind, Seq: ts.task.Seq, Assigned: ts.assigned, Done: ts.done,
			}
			if ts.assigned && !ts.done {
				st.Assignee = ts.assignee
				st.RunningForMS = now.Sub(ts.assignedAt).Milliseconds()
			}
			out = append(out, st)
		}
	}
	appendPool(m.mapTasks, "map")
	appendPool(m.redTasks, "reduce")
	return out
}
