package dist

import "time"

// status.go exposes the master's job and task tables as snapshot values for
// the live HTTP plane (internal/obs/httpd): /jobs serves the JobStatus
// list, /tasks serves TaskStatuses. Both are lock-scoped copies — callers
// never see the live tables.

// JobStatus is a point-in-time summary of one job on the master.
type JobStatus struct {
	// ID is the master-assigned job identity ("job-<n>"), stable across a
	// snapshot restart.
	ID string `json:"id"`
	// State is one of the Job* lifecycle constants.
	State string `json:"state"`
	// Running is State == JobRunning (kept for dashboard compatibility).
	Running bool `json:"running"`
	// Epoch is the job generation — the report-routing key; it
	// distinguishes jobs with the same workload name.
	Epoch uint64 `json:"epoch"`
	// Workload is the submitted job's workload name.
	Workload string `json:"workload,omitempty"`
	// Phase is the job's scheduler phase: "map" or "reduce" while running,
	// "" when queued or terminal.
	Phase string `json:"phase"`
	// Priority is the job's scheduling priority (higher dispatches first).
	Priority int `json:"priority"`
	// MapsDone / MapsTotal and ReducesDone / ReducesTotal are task-level
	// progress.
	MapsDone     int `json:"maps_done"`
	MapsTotal    int `json:"maps_total"`
	ReducesDone  int `json:"reduces_done"`
	ReducesTotal int `json:"reduces_total"`
	// Reassigned, Speculative, EarlyReduces and RecoveredMaps are this
	// job's share of the master's Stats counters.
	Reassigned    int `json:"reassigned"`
	Speculative   int `json:"speculative"`
	EarlyReduces  int `json:"early_reduces"`
	RecoveredMaps int `json:"recovered_maps"`
}

// TaskStatus is a point-in-time view of one task slot in a job's tables.
type TaskStatus struct {
	// Job is the owning job's ID.
	Job string `json:"job"`
	// Kind is "map" or "reduce"; Seq is the task's slot (split index or
	// partition).
	Kind string `json:"kind"`
	Seq  int    `json:"seq"`
	// Assigned reports an in-flight assignment; Assignee is the worker
	// holding it.
	Assigned bool   `json:"assigned"`
	Assignee string `json:"assignee,omitempty"`
	// RunningForMS is how long the current assignment has been out, in
	// milliseconds (0 when unassigned or done).
	RunningForMS int64 `json:"running_for_ms"`
	// Done reports completion.
	Done bool `json:"done"`
}

// jobStatusLocked summarizes one job; called under m.mu. Terminal jobs
// serve the status frozen at retirement (their tables are freed).
func (m *Master) jobStatusLocked(js *jobState) JobStatus {
	if js.final != nil {
		return *js.final
	}
	st := JobStatus{
		ID:            js.id,
		State:         js.state,
		Running:       js.state == JobRunning,
		Epoch:         js.epoch,
		Workload:      js.desc.Workload,
		Phase:         js.phase,
		Priority:      js.priority,
		MapsTotal:     len(js.mapTasks),
		ReducesTotal:  len(js.redTasks),
		Reassigned:    js.reassigned,
		Speculative:   js.speculative,
		EarlyReduces:  js.earlyReduces,
		RecoveredMaps: js.recoveredMaps,
	}
	if js.mapTasks != nil {
		st.MapsDone = len(js.mapTasks) - js.mapsLeft
	}
	if js.redTasks != nil {
		st.ReducesDone = len(js.redTasks) - js.redsLeft
	}
	return st
}

// JobStatus returns one job's summary by ID: active jobs live, terminal
// jobs from the retained ring or the snapshot-restored history.
func (m *Master) JobStatus(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js, ok := m.jobs[id]; ok {
		return m.jobStatusLocked(js), true
	}
	for i := len(m.retired) - 1; i >= 0; i-- {
		if m.retired[i].id == id {
			return *m.retired[i].final, true
		}
	}
	for i := len(m.history) - 1; i >= 0; i-- {
		if m.history[i].ID == id {
			return m.history[i], true
		}
	}
	return JobStatus{}, false
}

// Jobs returns every known job's status: active jobs in submission order,
// then terminal history (oldest first, bounded).
func (m *Master) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order)+len(m.history))
	for _, js := range m.order {
		out = append(out, m.jobStatusLocked(js))
	}
	out = append(out, m.history...)
	return out
}

// TaskStatuses returns a snapshot of the task slots of active jobs — every
// job when jobID is "", one job otherwise — map tasks first within each
// job, in slot order. Terminal jobs contribute nothing (their tables are
// dropped at retirement).
func (m *Master) TaskStatuses(jobID string) []TaskStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	var out []TaskStatus
	for _, js := range m.order {
		if jobID != "" && js.id != jobID {
			continue
		}
		appendPool := func(pool []*taskState, kind string) {
			for _, ts := range pool {
				st := TaskStatus{
					Job: js.id, Kind: kind, Seq: ts.task.Seq, Assigned: ts.assigned, Done: ts.done,
				}
				if ts.assigned && !ts.done {
					st.Assignee = ts.assignee
					st.RunningForMS = now.Sub(ts.assignedAt).Milliseconds()
				}
				out = append(out, st)
			}
		}
		appendPool(js.mapTasks, "map")
		appendPool(js.redTasks, "reduce")
	}
	return out
}
