package dist

import (
	"context"
	"errors"
	"net/rpc"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// startCluster brings up a master and n workers on loopback.
func startCluster(t *testing.T, n int, timeout time.Duration) (*Master, []*Worker, *sync.WaitGroup) {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0", timeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	var wg sync.WaitGroup
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker("worker-"+strconv.Itoa(i), m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("%s: %v", w.ID, err)
			}
		}(w)
		t.Cleanup(func() { w.Close() })
	}
	return m, workers, &wg
}

func outputCounts(t *testing.T, res *mapreduce.Result) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, p := range res.Output() {
		for _, kv := range p {
			n, err := strconv.Atoi(kv.Value)
			if err != nil {
				t.Fatalf("bad count %q", kv.Value)
			}
			if _, dup := out[kv.Key]; dup {
				t.Fatalf("duplicate key %q", kv.Key)
			}
			out[kv.Key] = n
		}
	}
	return out
}

func TestDistributedWordCountMatchesLocal(t *testing.T) {
	input := workloads.GenerateText(64*units.KB, 5)
	m, workers, wg := startCluster(t, 3, 5*time.Second)

	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 3}, input, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	got := outputCounts(t, res)
	want := map[string]int{}
	for _, w := range strings.Fields(string(input)) {
		want[w]++
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	if res.Counters.MapTasks < 8 {
		t.Errorf("only %d map tasks for 64KB at 8KB chunks", res.Counters.MapTasks)
	}
	// Every task attempt is accounted for (tasks are fast enough that a
	// single worker may legitimately drain the queue, so spread across
	// workers is not asserted).
	total := 0
	for _, w := range workers {
		total += w.TasksRun()
	}
	if want := res.Counters.MapTasks + res.Counters.ReduceTasks; total < want {
		t.Errorf("workers ran %d tasks, want >= %d", total, want)
	}
	if got := m.SortedWorkerIDs(); len(got) != 3 {
		t.Errorf("master saw %d workers, want 3", len(got))
	}
}

func TestDistributedTeraSortGlobalOrder(t *testing.T) {
	input := workloads.GenerateTeraRecords(32*units.KB, 9)
	m, _, wg := startCluster(t, 3, 5*time.Second)
	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "terasort", NumReducers: 3}, input, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var keys []string
	for _, p := range res.Output() {
		for _, kv := range p {
			keys = append(keys, kv.Key)
		}
	}
	lines := strings.Split(strings.TrimRight(string(input), "\n"), "\n")
	want := make([]string, len(lines))
	for i, l := range lines {
		want[i] = workloads.TeraKey(l)
	}
	sort.Strings(want)
	if len(keys) != len(want) {
		t.Fatalf("%d keys out, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key[%d] = %q, want %q (cross-partition order broken)", i, keys[i], want[i])
		}
	}
}

func TestDistributedFPGrowthMatchesLocalMiner(t *testing.T) {
	input := workloads.GenerateTransactions(8*units.KB, 7)
	m, _, wg := startCluster(t, 2, 5*time.Second)
	res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "fpgrowth", NumReducers: 2}, input, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var txs [][]string
	for _, line := range strings.Split(strings.TrimRight(string(input), "\n"), "\n") {
		txs = append(txs, strings.Fields(line))
	}
	want := map[string]int{}
	for _, p := range workloads.MineTransactions(txs, 2) {
		want[p.Key()] = p.Support
	}
	got := outputCounts(t, res)
	if len(got) != len(want) {
		t.Fatalf("distributed mined %d patterns, reference %d", len(got), len(want))
	}
	for k, s := range want {
		if got[k] != s {
			t.Errorf("support[%s] = %d, want %d", k, got[k], s)
		}
	}
}

// TestWorkerFailureReassignment kills a worker that has taken tasks; the
// master must reissue its work after the timeout and the job completes
// correctly on the survivor.
func TestWorkerFailureReassignment(t *testing.T) {
	input := workloads.GenerateText(32*units.KB, 11)
	m, err := NewMaster("127.0.0.1:0", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A saboteur that grabs map tasks and never completes them.
	sab, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sab.Close()

	resCh := make(chan *mapreduce.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 4*1024)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Let the saboteur steal a few tasks first.
	stolen := 0
	deadline := time.Now().Add(2 * time.Second)
	for stolen < 3 && time.Now().Before(deadline) {
		var task Task
		if err := sab.Call("Master.GetTask", GetTaskArgs{WorkerID: "saboteur"}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind == TaskMap {
			stolen++
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if stolen == 0 {
		t.Fatal("saboteur stole no tasks")
	}

	// Now start an honest worker; it must pick up the reissued tasks.
	w, err := NewWorker("honest", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		if err := w.Run(); err != nil {
			t.Error(err)
		}
	}()

	select {
	case err := <-errCh:
		t.Fatal(err)
	case res := <-resCh:
		got := outputCounts(t, res)
		want := map[string]int{}
		for _, word := range strings.Fields(string(input)) {
			want[word]++
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("count[%q] = %d, want %d after reassignment", k, got[k], v)
			}
		}
		st := m.Stats()
		if st.Reassigned+st.Speculative == 0 {
			t.Error("no reassignments or speculative attempts recorded despite the saboteur")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("job did not complete after worker failure")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 0}, []byte("x\n"), 4); err == nil {
		t.Error("zero reducers accepted")
	}
	if _, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "nope", NumReducers: 1}, []byte("x\n"), 4); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 1}, nil, 4); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "grep", NumReducers: 1}, []byte("x\n"), 4); err == nil {
		t.Error("grep without pattern accepted")
	}
}

func TestRegistryBuilds(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"wordcount", "naivebayes", "sort", "terasort"} {
		if _, err := r.Build(JobDescriptor{Workload: name, NumReducers: 2}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := r.Build(JobDescriptor{Workload: "grep", NumReducers: 1, Aux: []byte("ou")}); err != nil {
		t.Errorf("grep: %v", err)
	}
	if _, err := r.Build(JobDescriptor{Workload: "fpgrowth", NumReducers: 1, Aux: []byte("not json")}); err == nil {
		t.Error("fpgrowth with bad f-list accepted")
	}
	if _, err := r.Build(JobDescriptor{Workload: "unknown"}); err == nil {
		t.Error("unknown workload accepted")
	}
	// Custom registration.
	r.Register("custom", func(desc JobDescriptor) (mapreduce.Job, error) {
		cfg := mapreduce.DefaultConfig("custom")
		cfg.NumReducers = desc.NumReducers
		return mapreduce.Job{Config: cfg, Mapper: mapreduce.IdentityMapper(), Reducer: mapreduce.IdentityReducer()}, nil
	})
	if _, err := r.Build(JobDescriptor{Workload: "custom", NumReducers: 1}); err != nil {
		t.Errorf("custom: %v", err)
	}
}

func TestSplitInputRecordAligned(t *testing.T) {
	data := []byte("aaa\nbb\ncccc\ndd\ne\n")
	chunks := mapreduce.SplitInput(data, 5)
	var total int
	for i, c := range chunks {
		total += len(c)
		if c[len(c)-1] != '\n' && i != len(chunks)-1 {
			t.Errorf("chunk %d not newline-terminated: %q", i, c)
		}
	}
	if total != len(data) {
		t.Errorf("chunks cover %d bytes, want %d", total, len(data))
	}
	if len(chunks) < 2 {
		t.Errorf("expected multiple chunks, got %d", len(chunks))
	}
	if got := mapreduce.SplitInput(nil, 8); got != nil {
		t.Errorf("empty input produced chunks: %v", got)
	}
}

// TestRemoteSubmit exercises the RPC submission path used by cmd/hadoopd:
// a client dials the master and submits a job while daemon-mode workers
// keep polling across it.
func TestRemoteSubmit(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := NewWorker("daemon", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		if err := w.RunForever(); err != nil {
			t.Error(err)
		}
	}()

	client, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	input := workloads.GenerateText(16*units.KB, 2)
	var res mapreduce.Result
	if err := client.Call("Master.Submit", SubmitArgs{
		Desc: JobDescriptor{Workload: "wordcount", NumReducers: 2}, Input: input, BlockSize: 4096,
	}, &res); err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, &res)
	want := map[string]int{}
	for _, word := range strings.Fields(string(input)) {
		want[word]++
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	// The daemon worker survives the job: submit a second one.
	var res2 mapreduce.Result
	if err := client.Call("Master.Submit", SubmitArgs{
		Desc: JobDescriptor{Workload: "grep", NumReducers: 1, Aux: []byte("ou")}, Input: input, BlockSize: 4096,
	}, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Counters.MapTasks == 0 {
		t.Error("second job ran no tasks")
	}
}

// TestSpeculativeExecution checks the backup-task path: an idle worker
// receives a speculative copy of a straggler's task well before the hard
// reassignment timeout, and the job completes with first-result-wins
// semantics.
func TestSpeculativeExecution(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 13)
	m, err := NewMaster("127.0.0.1:0", 10*time.Second) // long hard timeout
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// The straggler grabs one map task and sits on it.
	sab, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sab.Close()

	resCh := make(chan *mapreduce.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 4*1024)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var task Task
		if err := sab.Call("Master.GetTask", GetTaskArgs{WorkerID: "straggler"}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind == TaskMap {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Wait past the speculation age (5s x 0.5 = 5s is too slow for a test;
	// the master computes it from the timeout, so poll until speculation
	// fires with an honest worker attached).
	w, err := NewWorker("honest", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		if err := w.Run(); err != nil {
			t.Error(err)
		}
	}()

	select {
	case err := <-errCh:
		t.Fatal(err)
	case res := <-resCh:
		if res.Counters.MapTasks == 0 {
			t.Error("no map tasks ran")
		}
		if m.Stats().Speculative == 0 {
			t.Error("no speculative attempts despite the straggler")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never completed")
	}
}

// TestReportFailureRequeuesImmediately checks the fast-failure path: a
// worker whose registry cannot build the job reports the failure, and the
// master hands the task to a healthy worker without waiting for the
// timeout.
func TestReportFailureRequeuesImmediately(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 19)
	m, err := NewMaster("127.0.0.1:0", 60*time.Second) // timeout far beyond the test
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A broken worker whose registry rejects every build.
	broken, err := NewWorker("broken", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer broken.Close()
	broken.Registry().Register("wordcount", func(JobDescriptor) (mapreduce.Job, error) {
		return mapreduce.Job{}, errors.New("broken factory")
	})
	go broken.Run() // will error out after reporting; ignore its exit

	resCh := make(chan *mapreduce.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := m.SubmitCtx(context.Background(), JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 4*1024)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Give the broken worker a moment to fail a task, then add a healthy one.
	time.Sleep(100 * time.Millisecond)
	w, err := NewWorker("healthy", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		if err := w.Run(); err != nil {
			t.Error(err)
		}
	}()

	select {
	case err := <-errCh:
		t.Fatal(err)
	case res := <-resCh:
		if res.Counters.MapTasks == 0 {
			t.Error("no tasks ran")
		}
		if m.Stats().Reassigned == 0 {
			t.Error("failure report did not requeue anything")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("job hung despite failure reporting (would have needed the 60s timeout)")
	}
}
