// Package dist is a distributed MapReduce runtime: a master coordinates
// map and reduce tasks across workers over TCP (net/rpc), the way the
// paper's 3-node Hadoop clusters run a JobTracker over slaves. Workers
// poll for tasks (the heartbeat), execute them with the engine's
// task-granular entry points, and the master reassigns tasks whose workers
// go silent — speculative re-execution included. Jobs are referenced by
// registered workload names (shipping class names, not code), with
// sampler/f-list auxiliary data computed master-side and sent alongside.
package dist

import (
	"heterohadoop/internal/mapreduce"
)

// JobDescriptor names a job and carries everything a worker needs to
// reconstruct it locally.
type JobDescriptor struct {
	// Workload is the registered job-factory name (e.g. "wordcount").
	Workload string
	// NumReducers is the reduce-partition count.
	NumReducers int
	// SortBuffer is the map-side spill buffer in bytes (0 = default).
	SortBuffer int64
	// Cuts are range-partitioner cut keys (TeraSort/Sort), computed by the
	// master's sampler.
	Cuts []string
	// Aux is workload-specific auxiliary data (e.g. FP-Growth's f-list or
	// grep's pattern), encoded by the job factory's conventions.
	Aux []byte
}

// Task kinds.
const (
	TaskWait   = "wait"   // nothing pending; poll again
	TaskMap    = "map"    // run a map split
	TaskReduce = "reduce" // run a reduce partition
	TaskDone   = "done"   // job finished; worker may exit
)

// Task is one unit of work handed to a worker.
type Task struct {
	// Kind is one of the Task* constants.
	Kind string
	// Epoch is the master's job generation the task belongs to. Workers
	// echo it in completion and failure reports so results from a job that
	// has since been aborted or superseded are rejected instead of being
	// recorded against the wrong job.
	Epoch uint64
	// Seq identifies the task attempt's slot in the master's tables.
	Seq int
	// Job describes how to build the job.
	Job JobDescriptor
	// NParts is the partition count map output must be split into.
	NParts int
	// SplitData is the record-aligned input chunk (map tasks).
	SplitData []byte
	// Partition is the reduce partition index (reduce tasks). Reduce tasks
	// carry no shuffle data: the worker streams its partition's segments
	// from the master with Master.FetchSegments while the map wave is still
	// running.
	Partition int
}

// GetTaskArgs is the worker's poll request (the heartbeat).
type GetTaskArgs struct {
	WorkerID string
}

// MapDone reports a completed map task. Epoch is copied from the Task.
//
// Parts carries one wire-encoded segment per partition
// (mapreduce.EncodeSegment): a length-prefixed binary blob gob treats as
// one opaque []byte, instead of reflecting over every KV as the legacy
// [][]KV payload did. Empty partitions still ship their 8-byte header —
// the coverage marker the reduce-side stable merge is defined over.
type MapDone struct {
	WorkerID string
	Epoch    uint64
	Seq      int
	Parts    [][]byte
	// NonEmpty lists the partitions in Parts that actually hold records —
	// the availability report that lets the master publish this task's
	// segments to early-dispatched reducers without rescanning Parts. A nil
	// NonEmpty makes the master derive it from the segment headers (legacy
	// senders).
	NonEmpty []int
	Counters mapreduce.Counters
}

// TaggedSegment is one map task's sorted output for one partition — a
// wire-encoded segment blob (mapreduce.DecodeSegment) — tagged with the
// producing task's Seq so reducers can restore map-task order — the order
// the engine's stable merge is defined over — no matter the order segments
// were fetched in. The master forwards Data untouched; only the worker
// ever decodes it.
type TaggedSegment struct {
	MapSeq int
	Data   []byte
}

// FetchSegmentsArgs asks the master for one partition's shuffle segments,
// starting at Cursor (the count of segments already fetched). Epoch is
// copied from the reduce Task so a fetch for an aborted or superseded job
// is answered Stale instead of with the wrong job's data.
type FetchSegmentsArgs struct {
	WorkerID  string
	Epoch     uint64
	Partition int
	Cursor    int
}

// FetchSegmentsReply carries the segments published since the cursor.
// Complete is set once the map wave has drained and every segment has been
// handed out, so the fetching reducer can start its final merge. Stale
// tells the worker to abandon the task: the job it belongs to is gone.
type FetchSegmentsReply struct {
	Segments []TaggedSegment
	Cursor   int
	Complete bool
	Stale    bool
}

// ReduceDone reports a completed reduce task. Epoch is copied from the
// Task. Output is the partition's sorted output as one wire-encoded
// segment blob; the master decodes it once, at job completion.
type ReduceDone struct {
	WorkerID  string
	Epoch     uint64
	Seq       int
	Partition int
	Output    []byte
	Counters  mapreduce.Counters
}

// Ack is the empty reply for one-way calls.
type Ack struct{}

// TaskFailed reports a task attempt the worker could not complete, so the
// master can requeue it immediately instead of waiting out the timeout.
type TaskFailed struct {
	WorkerID string
	Epoch    uint64
	Kind     string
	Seq      int
	Reason   string
}

// SubmitArgs is a remote job submission (cmd/hadoopd's client path).
type SubmitArgs struct {
	Desc      JobDescriptor
	Input     []byte
	BlockSize int
}
