// Package dist is a distributed MapReduce runtime: a master coordinates
// map and reduce tasks across workers over TCP (net/rpc), the way the
// paper's 3-node Hadoop clusters run a JobTracker over slaves. Workers
// poll for tasks (the heartbeat), execute them with the engine's
// task-granular entry points, and the master reassigns tasks whose workers
// go silent — speculative re-execution included. Jobs are referenced by
// registered workload names (shipping class names, not code), with
// sampler/f-list auxiliary data computed master-side and sent alongside.
//
// The master is multi-tenant: Submit is asynchronous and returns a
// JobHandle, many jobs run concurrently under a fair/capacity scheduler,
// workers that stop polling are evicted (their in-flight tasks requeued
// and their served map output re-executed), and an optional snapshot file
// lets a restarted master resume in-flight jobs.
package dist

import (
	"time"

	"heterohadoop/internal/mapreduce"
)

// JobDescriptor names a job and carries everything a worker needs to
// reconstruct it locally, plus the per-job scheduling knobs. The knobs
// default to the master's values (WithTaskTimeout and friends) when zero,
// so a slow batch job and a latency-sensitive job can coexist on one
// master with different timeouts.
type JobDescriptor struct {
	// Workload is the registered job-factory name (e.g. "wordcount").
	Workload string
	// NumReducers is the reduce-partition count.
	NumReducers int
	// SortBuffer is the map-side spill buffer in bytes (0 = default).
	SortBuffer int64
	// Cuts are range-partitioner cut keys (TeraSort/Sort), computed by the
	// master's sampler.
	Cuts []string
	// Aux is workload-specific auxiliary data (e.g. FP-Growth's f-list or
	// grep's pattern), encoded by the job factory's conventions.
	Aux []byte

	// Priority orders jobs in the scheduler: higher-priority jobs are
	// offered tasks first. Jobs of equal priority share capacity fairly
	// (fewest running tasks first). Zero is the default priority.
	Priority int
	// TaskTimeout bounds how long one of this job's tasks may stay
	// assigned without completion before reissue (0 = master default).
	TaskTimeout time.Duration
	// SpecFraction is the speculative-execution age as a fraction of
	// TaskTimeout (0 = master default).
	SpecFraction float64
	// ReduceSlowstart is the completed-map fraction gating early reduce
	// dispatch (0 = master default).
	ReduceSlowstart float64
}

// Task kinds.
const (
	TaskWait   = "wait"   // nothing pending; poll again
	TaskMap    = "map"    // run a map split
	TaskReduce = "reduce" // run a reduce partition
	TaskDone   = "done"   // job finished; worker may exit
)

// Task is one unit of work handed to a worker.
type Task struct {
	// Kind is one of the Task* constants.
	Kind string
	// JobID names the job the task belongs to (observability; the epoch is
	// the authoritative routing key).
	JobID string
	// Epoch is the master's job generation the task belongs to — unique
	// per submitted job, even across a snapshot restart. Workers echo it
	// in completion and failure reports so results from a job that has
	// since been aborted or superseded are rejected instead of being
	// recorded against the wrong job, and the master routes reports from
	// concurrent jobs by it.
	Epoch uint64
	// Seq identifies the task attempt's slot in the master's tables.
	Seq int
	// Job describes how to build the job.
	Job JobDescriptor
	// NParts is the partition count map output must be split into.
	NParts int
	// SplitData is the record-aligned input chunk (map tasks).
	SplitData []byte
	// Partition is the reduce partition index (reduce tasks). Reduce tasks
	// carry no shuffle data: the worker streams its partition's segments
	// from the master with Master.FetchSegments while the map wave is still
	// running.
	Partition int
	// ActiveEpochs lists the epochs of every job currently queued or
	// running, piggybacked on TaskWait/TaskDone replies so a
	// shuffle-serving worker can prune stored map output belonging to
	// finished jobs.
	ActiveEpochs []uint64
}

// GetTaskArgs is the worker's poll request (the heartbeat).
type GetTaskArgs struct {
	WorkerID string
	// Addr is the worker's shuffle-serve address ("" when the worker ships
	// map output inline). The master records it so evictions can be
	// attributed to served segments.
	Addr string
	// Class is the worker's declared core class ("big", "little", or a
	// custom profile name; "" when undeclared). The master records it in
	// the worker registry — the placement input for class-aware scheduling.
	Class string
}

// MapDone reports a completed map task. Epoch is copied from the Task.
//
// Parts carries one wire-encoded segment per partition
// (mapreduce.EncodeSegment): a length-prefixed binary blob gob treats as
// one opaque []byte, instead of reflecting over every KV as the legacy
// [][]KV payload did. Empty partitions still ship their 8-byte header —
// the coverage marker the reduce-side stable merge is defined over.
type MapDone struct {
	WorkerID string
	Epoch    uint64
	Seq      int
	Parts    [][]byte
	// NonEmpty lists the partitions in Parts that actually hold records —
	// the availability report that lets the master publish this task's
	// segments to early-dispatched reducers without rescanning Parts. A nil
	// NonEmpty makes the master derive it from the segment headers (legacy
	// senders).
	NonEmpty []int
	// Addr, when set, means the worker serves this task's output itself
	// (Shuffle.Fetch at Addr) instead of shipping it inline: Parts is nil
	// and PartStats carries the per-partition accounting the master would
	// otherwise read from the segment headers. If the worker dies, the
	// segments are gone and the master re-executes the map.
	Addr string
	// PartStats is the per-partition record/byte accounting for served
	// output (one entry per non-empty partition).
	PartStats []PartStat
	Counters  mapreduce.Counters
}

// PartStat is one non-empty partition's accounting in a served MapDone.
type PartStat struct {
	Part  int
	Recs  int
	Bytes int64
}

// TaggedSegment is one map task's sorted output for one partition — a
// wire-encoded segment blob (mapreduce.DecodeSegment) — tagged with the
// producing task's Seq so reducers can restore map-task order — the order
// the engine's stable merge is defined over — no matter the order segments
// were fetched in. The master forwards Data untouched; only the worker
// ever decodes it.
//
// A segment is either inline (Data set) or served (Addr set): served
// segments live on the producing worker and the reducer fetches them with
// Shuffle.Fetch. When the producer is unreachable the reducer reports the
// loss (Master.ReportLostSegments) and the master re-executes the map,
// publishing a replacement entry with the same MapSeq — consumers keep the
// latest entry per MapSeq.
type TaggedSegment struct {
	MapSeq int
	Data   []byte
	// Addr is the producing worker's shuffle-serve address ("" = inline).
	Addr string
	// Owner is the producing worker's ID (served segments only), echoed in
	// loss reports so a stale report cannot invalidate a re-executed map.
	Owner string
}

// FetchPartArgs asks a worker's shuffle server for one map task's output
// for one partition. Frame is the fetch cursor for disk-backed output
// (WithSpillDir workers): the reducer pulls wire-encoded frames one at a
// time, starting at 0, until More comes back false. In-memory stores
// ignore it beyond treating any Frame > 0 as out of range.
type FetchPartArgs struct {
	Epoch     uint64
	MapSeq    int
	Partition int
	Frame     int
}

// FetchPartReply carries the requested segment blob — the whole partition
// for an in-memory store, one frame of it for a disk-backed store. More is
// set when further frames follow (disk-backed, multi-frame partitions); the
// fetcher increments Frame and calls again. OK is false when the worker no
// longer holds the segment (pruned after job completion, it never ran the
// map, or the spill file failed validation on read) — the fetcher treats
// that as segment loss and the master re-executes the owning map.
type FetchPartReply struct {
	Data []byte
	More bool
	OK   bool
}

// SegmentsLost reports shuffle segments a reducer could not fetch from
// their producing worker, so the master can re-execute the lost maps
// instead of letting the reduce wait forever.
type SegmentsLost struct {
	// WorkerID is the reporting reducer's worker.
	WorkerID string
	Epoch    uint64
	// Partition is the partition whose fetch failed (diagnostic).
	Partition int
	// MapSeqs are the map tasks whose segments are unreachable.
	MapSeqs []int
	// Owner is the worker the segments were served by; the master only
	// invalidates maps still owned by it (a map that already re-executed
	// elsewhere is left alone).
	Owner string
}

// FetchSegmentsArgs asks the master for one partition's shuffle segments,
// starting at Cursor (the count of segments already fetched). Epoch is
// copied from the reduce Task so a fetch for an aborted or superseded job
// is answered Stale instead of with the wrong job's data.
type FetchSegmentsArgs struct {
	WorkerID  string
	Epoch     uint64
	Partition int
	Cursor    int
}

// FetchSegmentsReply carries the segments published since the cursor.
// Complete is set once the map wave has drained and every segment has been
// handed out, so the fetching reducer can start its final merge. Stale
// tells the worker to abandon the task: the job it belongs to is gone.
type FetchSegmentsReply struct {
	Segments []TaggedSegment
	Cursor   int
	Complete bool
	Stale    bool
}

// ReduceDone reports a completed reduce task. Epoch is copied from the
// Task. Output is the partition's sorted output as one wire-encoded
// segment blob; the master decodes it once, at job completion.
type ReduceDone struct {
	WorkerID  string
	Epoch     uint64
	Seq       int
	Partition int
	Output    []byte
	Counters  mapreduce.Counters
}

// Ack is the empty reply for one-way calls.
type Ack struct{}

// TaskFailed reports a task attempt the worker could not complete, so the
// master can requeue it immediately instead of waiting out the timeout.
type TaskFailed struct {
	WorkerID string
	Epoch    uint64
	Kind     string
	Seq      int
	Reason   string
}

// SubmitArgs is a remote job submission (cmd/hadoopd's client path).
type SubmitArgs struct {
	Desc      JobDescriptor
	Input     []byte
	BlockSize int
}
