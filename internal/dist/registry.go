package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// JobFactory reconstructs a runnable job from a descriptor — the moral
// equivalent of Hadoop instantiating mapper/reducer classes by name on the
// worker side.
type JobFactory func(desc JobDescriptor) (mapreduce.Job, error)

// Registry maps workload names to factories. Both master and workers hold
// one; the bundled workloads are pre-registered.
type Registry struct {
	factories map[string]JobFactory
}

// NewRegistry returns a registry with the six studied workloads installed.
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]JobFactory)}
	r.Register("wordcount", func(desc JobDescriptor) (mapreduce.Job, error) {
		return workloads.NewWordCount().Build(descConfig(desc, "wordcount"), nil)
	})
	r.Register("naivebayes", func(desc JobDescriptor) (mapreduce.Job, error) {
		return workloads.NewNaiveBayes().Build(descConfig(desc, "naivebayes"), nil)
	})
	r.Register("grep", func(desc JobDescriptor) (mapreduce.Job, error) {
		pattern := string(desc.Aux)
		if pattern == "" {
			return mapreduce.Job{}, fmt.Errorf("dist: grep needs its pattern in Aux")
		}
		return workloads.NewGrep(pattern).Build(descConfig(desc, "grep"), nil)
	})
	r.Register("sort", func(desc JobDescriptor) (mapreduce.Job, error) {
		return mapreduce.Job{
			Config:      descConfig(desc, "sort"),
			Mapper:      mapreduce.IdentityMapper(),
			Reducer:     mapreduce.IdentityReducer(),
			Partitioner: mapreduce.RangePartitioner(desc.Cuts),
		}, nil
	})
	r.Register("terasort", func(desc JobDescriptor) (mapreduce.Job, error) {
		// TeraSort's mapper splits key and payload; the master ships the
		// sampled cuts.
		return workloads.BuildTeraSortWithCuts(descConfig(desc, "terasort"), desc.Cuts), nil
	})
	r.Register("fpgrowth", func(desc JobDescriptor) (mapreduce.Job, error) {
		// The f-list travels as JSON in Aux; rebuild the job around it by
		// reconstructing a tiny input that reproduces the counts is not
		// possible, so the factory re-implements Build's wiring with the
		// shipped counts.
		var counts map[string]int
		if err := json.Unmarshal(desc.Aux, &counts); err != nil {
			return mapreduce.Job{}, fmt.Errorf("dist: fpgrowth f-list: %w", err)
		}
		minSupport := 2
		if v, ok := counts["\x00minSupport"]; ok {
			minSupport = v
			delete(counts, "\x00minSupport")
		}
		return workloads.BuildFPGrowthWithFList(descConfig(desc, "fpgrowth"), counts, minSupport), nil
	})
	return r
}

// Register installs (or replaces) a factory.
func (r *Registry) Register(name string, f JobFactory) { r.factories[name] = f }

// Build reconstructs the job for a descriptor.
func (r *Registry) Build(desc JobDescriptor) (mapreduce.Job, error) {
	f, ok := r.factories[desc.Workload]
	if !ok {
		known := make([]string, 0, len(r.factories))
		for n := range r.factories {
			known = append(known, n)
		}
		sort.Strings(known)
		return mapreduce.Job{}, fmt.Errorf("dist: unknown workload %q (known: %s)", desc.Workload, strings.Join(known, ", "))
	}
	return f(desc)
}

// descConfig converts the wire descriptor into an engine config.
func descConfig(desc JobDescriptor, name string) mapreduce.Config {
	cfg := mapreduce.DefaultConfig(name)
	cfg.NumReducers = desc.NumReducers
	if desc.SortBuffer > 0 {
		cfg.SortBuffer = units.Bytes(desc.SortBuffer)
	}
	return cfg
}

// workerInfo is one worker's liveness record in the master's table.
type workerInfo struct {
	// ID is the worker's self-declared identity.
	ID string
	// Addr is the worker's shuffle-serve address ("" for inline shippers).
	Addr string
	// Class is the worker's declared core class ("" when undeclared); set
	// from the poll that carries it, kept across touches that do not.
	Class string
	// LastSeen is the last poll/fetch/completion touch.
	LastSeen time.Time
	// Evicted marks a worker declared dead after missing the liveness
	// window; a fresh poll resurrects it.
	Evicted bool
}

// workerTable tracks worker liveness for the master: every RPC touch
// refreshes LastSeen, and workers silent past the liveness window are
// evicted (in-flight tasks requeued, served map output re-executed).
// Callers hold the master's lock.
type workerTable struct {
	workers map[string]*workerInfo
}

func newWorkerTable() *workerTable {
	return &workerTable{workers: make(map[string]*workerInfo)}
}

// touch refreshes (or creates) a worker's record. A previously evicted
// worker that polls again rejoins as live.
func (t *workerTable) touch(id, addr string, now time.Time) *workerInfo {
	w := t.workers[id]
	if w == nil {
		w = &workerInfo{ID: id}
		t.workers[id] = w
	}
	w.LastSeen = now
	w.Evicted = false
	if addr != "" {
		w.Addr = addr
	}
	return w
}

// silent returns the live workers whose last touch is older than the
// window — the eviction candidates.
func (t *workerTable) silent(window time.Duration, now time.Time) []*workerInfo {
	var out []*workerInfo
	for _, w := range t.workers {
		if !w.Evicted && now.Sub(w.LastSeen) > window {
			out = append(out, w)
		}
	}
	return out
}

// live counts workers not currently evicted.
func (t *workerTable) live() int {
	n := 0
	for _, w := range t.workers {
		if !w.Evicted {
			n++
		}
	}
	return n
}

// ids returns every known worker ID, sorted, evicted included.
func (t *workerTable) ids() []string {
	out := make([]string, 0, len(t.workers))
	for id := range t.workers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PrepareAux computes the master-side auxiliary data a workload needs
// before its descriptor can be shipped: sampled range cuts for the sorts,
// the f-list for FP-Growth, patterns for grep. It mutates the descriptor.
func PrepareAux(desc *JobDescriptor, input []byte) error {
	switch desc.Workload {
	case "sort":
		cuts, err := workloads.SampleCuts(input, desc.NumReducers, func(line string) string { return line })
		if err != nil {
			return err
		}
		desc.Cuts = cuts
	case "terasort":
		cuts, err := workloads.SampleCuts(input, desc.NumReducers, workloads.TeraKey)
		if err != nil {
			return err
		}
		desc.Cuts = cuts
	case "fpgrowth":
		minSupport := 2
		counts := workloads.CountItems(input)
		counts["\x00minSupport"] = minSupport
		aux, err := json.Marshal(counts)
		if err != nil {
			return err
		}
		desc.Aux = aux
	}
	return nil
}
