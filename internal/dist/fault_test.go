package dist

// fault_test.go covers the multi-tenant master's failure machinery: the
// async JobHandle lifecycle, per-job knob resolution, lost-shuffle map
// re-execution, silent-worker eviction, snapshot restart, and the chaos
// scenario the acceptance criteria name — concurrent jobs surviving a
// worker kill and a master restart with output byte-identical to a serial
// run.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/rpc"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func TestPerJobKnobOverrides(t *testing.T) {
	def := defaultConfig()
	now := time.Now()
	js := newJobState("job-1", 1, JobDescriptor{
		Workload: "wordcount", NumReducers: 2,
		TaskTimeout: time.Second, SpecFraction: 0.9, ReduceSlowstart: 0.25, Priority: 7,
	}, 1024, [][]byte{[]byte("a\n")}, def, now)
	if js.taskTimeout != time.Second {
		t.Errorf("taskTimeout = %v, want 1s", js.taskTimeout)
	}
	if js.specFraction != 0.9 {
		t.Errorf("specFraction = %v, want 0.9", js.specFraction)
	}
	if js.reduceSlowstart != 0.25 {
		t.Errorf("reduceSlowstart = %v, want 0.25", js.reduceSlowstart)
	}
	if js.priority != 7 {
		t.Errorf("priority = %d, want 7", js.priority)
	}

	// Out-of-range overrides fall back to the master defaults.
	js = newJobState("job-2", 2, JobDescriptor{
		Workload: "wordcount", NumReducers: 2,
		TaskTimeout: -time.Second, SpecFraction: 1.5, ReduceSlowstart: -1,
	}, 1024, [][]byte{[]byte("a\n")}, def, now)
	if js.taskTimeout != def.taskTimeout || js.specFraction != def.specFraction ||
		js.reduceSlowstart != def.reduceSlowstart || js.priority != 0 {
		t.Errorf("invalid overrides not defaulted: timeout=%v spec=%v slowstart=%v prio=%d",
			js.taskTimeout, js.specFraction, js.reduceSlowstart, js.priority)
	}
}

func TestJobHandleAsyncLifecycle(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0", WithMaxQueuedJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	input := workloads.GenerateText(4*units.KB, 3)

	// No workers attached: jobs stay pending, so the handle surface can be
	// inspected deterministically.
	h, err := m.Submit(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "job-1" {
		t.Errorf("first job ID = %q, want job-1", h.ID())
	}
	if st := h.Status(); st.State != JobRunning {
		t.Errorf("submitted job state = %q, want %q (admitted below the cap)", st.State, JobRunning)
	}
	if st, ok := m.JobStatus(h.ID()); !ok || st.ID != h.ID() {
		t.Errorf("JobStatus(%q) = %+v, %v", h.ID(), st, ok)
	}
	if _, ok := m.JobStatus("job-999"); ok {
		t.Error("JobStatus for an unknown ID reported ok")
	}
	if hs, ok := m.Handle(h.ID()); !ok || hs.ID() != h.ID() {
		t.Errorf("Handle(%q) = %v, %v", h.ID(), hs, ok)
	}
	if jobs := m.Jobs(); len(jobs) != 1 || jobs[0].ID != h.ID() {
		t.Errorf("Jobs() = %+v, want the one submitted job", jobs)
	}

	// Admission control: the queue cap counts every live job.
	if _, err := m.Submit(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 1024); !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit over the queue cap: %v, want wrapped ErrQueueFull", err)
	}

	// Cancel is the client-driven abort: Wait unblocks with ErrJobCancelled,
	// status survives retirement, and the queue slot frees up.
	h.Cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, ErrJobCancelled) {
		t.Errorf("Wait after Cancel: %v, want wrapped ErrJobCancelled", err)
	}
	if st := h.Status(); st.State != JobCancelled {
		t.Errorf("cancelled job state = %q, want %q", st.State, JobCancelled)
	}
	h.Cancel() // idempotent on a finished job
	if st, ok := m.JobStatus(h.ID()); !ok || st.State != JobCancelled {
		t.Errorf("retired JobStatus(%q) = %+v, %v, want cancelled", h.ID(), st, ok)
	}
	if _, err := m.Submit(ctx, JobDescriptor{Workload: "wordcount", NumReducers: 1}, input, 1024); err != nil {
		t.Errorf("submit after cancel freed a slot: %v", err)
	}

	// A Wait whose context expires abandons the wait without killing the job.
	h2, ok := m.Handle("job-2")
	if !ok {
		t.Fatal("job-2 handle missing")
	}
	wctx, wcancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer wcancel()
	if _, err := h2.Wait(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("abandoned wait: %v, want wrapped context.DeadlineExceeded", err)
	}
	if st := h2.Status(); st.State == JobCancelled {
		t.Error("abandoning a wait cancelled the job")
	}
}

// completeMapsServed drives the master as a manual worker that executes
// every map task of the running job for real but claims to serve the
// output at addr — a shuffle endpoint the test controls (typically dead).
func completeMapsServed(t *testing.T, m *Master, client *rpc.Client, workerID, addr string, desc JobDescriptor) int {
	t.Helper()
	job, err := NewRegistry().Build(desc)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	deadline := time.Now().Add(5 * time.Second)
	for total == 0 && time.Now().Before(deadline) {
		for _, st := range m.Jobs() {
			if st.State == JobRunning {
				total = st.MapsTotal
			}
		}
		time.Sleep(time.Millisecond)
	}
	if total == 0 {
		t.Fatal("no running job appeared")
	}
	served := 0
	deadline = time.Now().Add(10 * time.Second)
	for served < total && time.Now().Before(deadline) {
		var task Task
		if err := client.Call("Master.GetTask", GetTaskArgs{WorkerID: workerID}, &task); err != nil {
			t.Fatal(err)
		}
		if task.Kind != TaskMap {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		segs, counters, err := mapreduce.ExecuteMapSplit(job, task.SplitData, task.NParts)
		if err != nil {
			t.Fatal(err)
		}
		var stats []PartStat
		for p, seg := range segs {
			blob := mapreduce.EncodeSegment(seg)
			n, b, err := mapreduce.SegmentStats(blob)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				continue
			}
			stats = append(stats, PartStat{Part: p, Recs: n, Bytes: int64(b)})
		}
		if err := client.Call("Master.CompleteMap", MapDone{
			WorkerID: workerID, Epoch: task.Epoch, Seq: task.Seq,
			Addr: addr, PartStats: stats, Counters: counters,
		}, &Ack{}); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if served < total {
		t.Fatalf("served %d/%d maps before the deadline", served, total)
	}
	return served
}

// TestLostShuffleMapRerun is the lost-shuffle regression: a worker serves
// its map output, dies before any reducer fetches it, and the job must
// still complete correctly — the reducer reports the unreachable segments,
// the master re-executes the maps elsewhere, and the replacements are
// consumed under the same MapSeq.
func TestLostShuffleMapRerun(t *testing.T) {
	input := workloads.GenerateText(8*units.KB, 21)
	// Slowstart 1.0 keeps reduces undispatched until the doomed worker has
	// finished every map, so the loss is discovered by fetch, not masked by
	// the map wave; the long timeout keeps the timeout path out of it.
	desc := JobDescriptor{
		Workload: "wordcount", NumReducers: 1,
		TaskTimeout: time.Minute, ReduceSlowstart: 1.0,
	}
	m, err := StartMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	doomed, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()

	// A shuffle address that is guaranteed dead: bind a loopback port, then
	// close it before anyone fetches.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	h, err := m.Submit(context.Background(), desc, input, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	served := completeMapsServed(t, m, doomed, "doomed", deadAddr, desc)

	// A real worker now takes the reduce, fails to fetch from deadAddr,
	// reports the loss, and re-executes the invalidated maps itself.
	w, err := ConnectWorker("survivor", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go w.Run() //nolint:errcheck // exits when the job drains

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, res)
	want := map[string]int{}
	for _, word := range strings.Fields(string(input)) {
		want[word]++
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d after map re-execution", k, got[k], v)
		}
	}
	st := m.Stats()
	if st.RecoveredMaps < served {
		t.Errorf("RecoveredMaps = %d, want >= %d (every served map was lost)", st.RecoveredMaps, served)
	}
	if st.Evicted < 1 {
		t.Errorf("Evicted = %d, want >= 1 (the loss report evicts the owner)", st.Evicted)
	}
	if js := h.Status(); js.RecoveredMaps < served {
		t.Errorf("job RecoveredMaps = %d, want >= %d", js.RecoveredMaps, served)
	}
}

// TestWorkerEvictionRequeuesInFlight checks liveness-based recovery: a
// worker that takes a task and then goes silent is evicted after the
// worker timeout, its in-flight assignment requeued — well before the
// (deliberately enormous) task timeout.
func TestWorkerEvictionRequeuesInFlight(t *testing.T) {
	input := workloads.GenerateText(16*units.KB, 23)
	m, err := StartMaster("127.0.0.1:0",
		WithTaskTimeout(time.Minute), WithWorkerTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ghost, err := rpc.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Close()

	h, err := m.Submit(context.Background(),
		JobDescriptor{Workload: "wordcount", NumReducers: 2}, input, 4*1024)
	if err != nil {
		t.Fatal(err)
	}
	stealMapTask(t, ghost, "ghost")
	// The ghost never polls again: only eviction can free its task.

	w, err := ConnectWorker("survivor", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go w.Run() //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, res)
	want := map[string]int{}
	for _, word := range strings.Fields(string(input)) {
		want[word]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d after eviction", k, got[k], v)
		}
	}
	st := m.Stats()
	if st.Evicted < 1 {
		t.Errorf("Evicted = %d, want >= 1", st.Evicted)
	}
	if st.Reassigned < 1 {
		t.Errorf("Reassigned = %d, want >= 1 (the ghost's map must requeue)", st.Reassigned)
	}
}

// TestSnapshotRestartResumesJob checks crash recovery through the
// versioned snapshot: a master with an in-flight job — one map already
// completed inline — is closed and a new master started on the same
// snapshot path resumes the job, keeps the completed work, and finishes
// it with a fresh worker.
func TestSnapshotRestartResumesJob(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "master.snap")
	input := workloads.GenerateText(8*units.KB, 29)
	desc := JobDescriptor{Workload: "wordcount", NumReducers: 2}

	m1, err := StartMaster("127.0.0.1:0", WithSnapshotPath(snap), WithTaskTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m1.Submit(context.Background(), desc, input, 2*1024)
	if err != nil {
		m1.Close()
		t.Fatal(err)
	}

	// Complete one map inline (master-held output: it must survive the
	// restart) through a manual client, then kill the master.
	clerk, err := rpc.Dial("tcp", m1.Addr())
	if err != nil {
		m1.Close()
		t.Fatal(err)
	}
	task := stealMapTask(t, clerk, "clerk")
	job, err := NewRegistry().Build(desc)
	if err != nil {
		t.Fatal(err)
	}
	segs, counters, err := mapreduce.ExecuteMapSplit(job, task.SplitData, task.NParts)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]byte, len(segs))
	for p, seg := range segs {
		parts[p] = mapreduce.EncodeSegment(seg)
	}
	if err := clerk.Call("Master.CompleteMap", MapDone{
		WorkerID: "clerk", Epoch: task.Epoch, Seq: task.Seq, Parts: parts, Counters: counters,
	}, &Ack{}); err != nil {
		t.Fatal(err)
	}
	clerk.Close()
	if st, ok := m1.JobStatus(h1.ID()); !ok || st.MapsDone != 1 {
		t.Fatalf("pre-restart status = %+v, %v, want 1 map done", st, ok)
	}
	m1.Close()

	m2, err := StartMaster("127.0.0.1:0", WithSnapshotPath(snap), WithTaskTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st, ok := m2.JobStatus(h1.ID())
	if !ok {
		t.Fatalf("restored master lost job %s", h1.ID())
	}
	if st.MapsDone != 1 {
		t.Errorf("restored MapsDone = %d, want 1 (inline map output must survive)", st.MapsDone)
	}
	if st.State != JobRunning {
		t.Errorf("restored job state = %q, want %q", st.State, JobRunning)
	}
	h2, ok := m2.Handle(h1.ID())
	if !ok {
		t.Fatal("restored master has no handle for the job")
	}

	w, err := ConnectWorker("resumer", m2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go w.Run() //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, res)
	want := map[string]int{}
	for _, word := range strings.Fields(string(input)) {
		want[word]++
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d (restored job lost input coverage)", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d across the restart", k, got[k], v)
		}
	}
	// The restored master accepts new work alongside the resumed job.
	if _, err := m2.SubmitCtx(ctx, desc, workloads.GenerateText(4*units.KB, 31), 2*1024); err != nil {
		t.Errorf("fresh submit on the restored master: %v", err)
	}
}

// chaosJob is one of the concurrent jobs in the chaos scenario.
type chaosJob struct {
	desc  JobDescriptor
	input []byte
}

func chaosJobs() []chaosJob {
	jobs := make([]chaosJob, 0, 8)
	for i := 0; i < 6; i++ {
		jobs = append(jobs, chaosJob{
			desc:  JobDescriptor{Workload: "wordcount", NumReducers: 2, Priority: i % 3},
			input: workloads.GenerateText(64*units.KB, int64(100+i)),
		})
	}
	for i := 0; i < 2; i++ {
		jobs = append(jobs, chaosJob{
			desc:  JobDescriptor{Workload: "terasort", NumReducers: 3, TaskTimeout: 3 * time.Second},
			input: workloads.GenerateTeraRecords(32*units.KB, int64(200+i)),
		})
	}
	return jobs
}

// TestChaosMultiTenantRecovery is the acceptance scenario: eight jobs
// submitted concurrently through JobHandles on a snapshotting master with
// three workers; one worker is killed mid-run, then the master itself is
// killed and restarted from its snapshot with fresh workers. Every job
// must complete with output byte-identical to a serial run.
func TestChaosMultiTenantRecovery(t *testing.T) {
	jobs := chaosJobs()

	// Serial reference: the same jobs one at a time on a plain master.
	serial := make([][]byte, len(jobs))
	{
		ms, err := StartMaster("127.0.0.1:0", WithTaskTimeout(10*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		ws, err := ConnectWorker("serial", ms.Addr())
		if err != nil {
			ms.Close()
			t.Fatal(err)
		}
		go ws.RunForever() //nolint:errcheck
		for i, cj := range jobs {
			res, err := ms.SubmitCtx(context.Background(), cj.desc, cj.input, 4*1024)
			if err != nil {
				t.Fatalf("serial job %d: %v", i, err)
			}
			serial[i] = mapreduce.MaterializeOutput(res)
		}
		ws.Close()
		ms.Close()
	}

	snap := filepath.Join(t.TempDir(), "chaos.snap")
	opts := []Option{
		WithSnapshotPath(snap), WithTaskTimeout(2 * time.Second),
		WithMaxConcurrentJobs(3), WithWorkerTimeout(400 * time.Millisecond),
	}
	m1, err := StartMaster("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	startWorkers := func(addr, prefix string) []*Worker {
		workers := make([]*Worker, 3)
		for i := range workers {
			w, err := ConnectWorker(prefix+strconv.Itoa(i), addr)
			if err != nil {
				t.Fatal(err)
			}
			workers[i] = w
			go w.RunForever() //nolint:errcheck // killed mid-run by design
		}
		return workers
	}
	gen1 := startWorkers(m1.Addr(), "cw-")

	handles := make([]*JobHandle, len(jobs))
	for i, cj := range jobs {
		h, err := m1.Submit(context.Background(), cj.desc, cj.input, 4*1024)
		if err != nil {
			t.Fatalf("chaos submit %d: %v", i, err)
		}
		handles[i] = h
	}

	// Kill one worker mid-run (its served shuffle output dies with it),
	// then kill the master itself and every remaining first-generation
	// worker: recovery must come entirely from the snapshot.
	time.Sleep(40 * time.Millisecond)
	gen1[2].Close()
	time.Sleep(150 * time.Millisecond)
	m1.Close()
	gen1[0].Close()
	gen1[1].Close()

	m2, err := StartMaster("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	gen2 := startWorkers(m2.Addr(), "nw-")
	defer func() {
		for _, w := range gen2 {
			w.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, h := range handles {
		var res *mapreduce.Result
		select {
		case <-h.Done():
			// Finished on the first master before the kill: its result is
			// already latched in the original handle.
			r, err := h.Wait(ctx)
			if err != nil {
				t.Fatalf("job %s (finished pre-restart): %v", h.ID(), err)
			}
			res = r
		default:
			h2, ok := m2.Handle(h.ID())
			if !ok {
				t.Fatalf("restored master lost in-flight job %s", h.ID())
			}
			r, err := h2.Wait(ctx)
			if err != nil {
				t.Fatalf("job %s (resumed): %v", h.ID(), err)
			}
			res = r
		}
		if got := mapreduce.MaterializeOutput(res); !bytes.Equal(got, serial[i]) {
			t.Errorf("job %s output differs from the serial run (%d vs %d bytes)",
				h.ID(), len(got), len(serial[i]))
		}
	}
}
