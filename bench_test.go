package heterohadoop_test

// bench_test.go wraps every reproduced table and figure in a testing.B
// benchmark, so `go test -bench=. -benchmem` regenerates the full
// evaluation and reports the cost of producing each artefact. The rows
// themselves are printed once per benchmark under -v via b.Log; use
// cmd/experiments for the plain-text tables.

import (
	"fmt"
	"runtime"
	"testing"

	"heterohadoop/internal/expt"
	"heterohadoop/internal/hdfs"
	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/sim"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// benchArtefact runs one expt generator per iteration, as a pair of
// sub-benchmarks: "serial" pins the sweep pool to one worker, "parallel"
// uses one worker per CPU. The simulator result cache is cleared before
// every iteration so each measures the cost of a cold regeneration —
// compare the pair to see the executor speedup, e.g.
//
//	go test -bench 'Fig03|Fig17|Table3' -count 5
func benchArtefact(b *testing.B, id string) {
	b.Helper()
	g, err := expt.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		width int
	}{
		{"serial", 1},
		{"parallel", runtime.NumCPU()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			defer expt.SetParallelism(expt.SetParallelism(mode.width))
			var rows int
			for i := 0; i < b.N; i++ {
				sim.ResetCache()
				tbl, err := g.Run()
				if err != nil {
					b.Fatal(err)
				}
				rows = len(tbl.Rows)
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

func BenchmarkTable1Architecture(b *testing.B)    { benchArtefact(b, "table1") }
func BenchmarkTable2Applications(b *testing.B)    { benchArtefact(b, "table2") }
func BenchmarkFig01IPC(b *testing.B)              { benchArtefact(b, "fig1") }
func BenchmarkFig02EDPRatios(b *testing.B)        { benchArtefact(b, "fig2") }
func BenchmarkFig03ExecTimeMicro(b *testing.B)    { benchArtefact(b, "fig3") }
func BenchmarkFig04ExecTimeReal(b *testing.B)     { benchArtefact(b, "fig4") }
func BenchmarkFig05EDPReal(b *testing.B)          { benchArtefact(b, "fig5") }
func BenchmarkFig06EDPMicro(b *testing.B)         { benchArtefact(b, "fig6") }
func BenchmarkFig07PhaseEDPMicro(b *testing.B)    { benchArtefact(b, "fig7") }
func BenchmarkFig08PhaseEDPReal(b *testing.B)     { benchArtefact(b, "fig8") }
func BenchmarkFig09EDPBlockSize(b *testing.B)     { benchArtefact(b, "fig9") }
func BenchmarkFig10DataSizeMicro(b *testing.B)    { benchArtefact(b, "fig10") }
func BenchmarkFig11DataSizeReal(b *testing.B)     { benchArtefact(b, "fig11") }
func BenchmarkFig12EDPDataSize(b *testing.B)      { benchArtefact(b, "fig12") }
func BenchmarkFig13PhaseEDPDataSize(b *testing.B) { benchArtefact(b, "fig13") }
func BenchmarkFig14Acceleration(b *testing.B)     { benchArtefact(b, "fig14") }
func BenchmarkFig15AccelFrequency(b *testing.B)   { benchArtefact(b, "fig15") }
func BenchmarkFig16AccelBlockSize(b *testing.B)   { benchArtefact(b, "fig16") }
func BenchmarkTable3Cost(b *testing.B)            { benchArtefact(b, "table3") }
func BenchmarkFig17Spider(b *testing.B)           { benchArtefact(b, "fig17") }
func BenchmarkSchedulingCase(b *testing.B)        { benchArtefact(b, "sched") }

// BenchmarkFullEvaluation regenerates every artefact per iteration.
// "cold" clears the result cache each time, so it still benefits from
// cells shared across artefacts within the pass; "warm" keeps the cache
// populated across iterations — the steady-state cost of re-running the
// evaluation in one process.
func BenchmarkFullEvaluation(b *testing.B) {
	for _, mode := range []struct {
		name string
		cold bool
	}{
		{"cold", true},
		{"warm", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sim.ResetCache()
			for i := 0; i < b.N; i++ {
				if mode.cold {
					sim.ResetCache()
				}
				for _, g := range expt.All() {
					if _, err := g.Run(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- engine micro-benchmarks: the real execution path under load ----

// benchEngine runs a real workload end to end per iteration, as a pair of
// sub-benchmarks: "serial" pins one task slot and the legacy barrier
// shuffle (the measurement baseline), "parallel" uses the default
// configuration — one slot per CPU with the streaming shuffle. Output is
// byte-identical between the two (engine_parity_test.go pins this); the
// pair measures only the executor. cmd/benchmr records the same pair at
// paper-adjacent sizes into BENCH_mapreduce.json.
func benchEngine(b *testing.B, name string, size units.Bytes) {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	input := w.Generate(size, 42)
	for _, mode := range []struct {
		name        string
		parallelism int
		barrier     bool
	}{
		{"serial", 1, true},
		{"parallel", 0, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store, err := hdfs.NewStore(hdfs.Config{BlockSize: size / 4, Replication: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := store.Write("in", input); err != nil {
					b.Fatal(err)
				}
				cfg := mapreduce.DefaultConfig(name)
				cfg.NumReducers = 2
				cfg.Parallelism = mode.parallelism
				cfg.BarrierShuffle = mode.barrier
				job, err := w.Build(cfg, input)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mapreduce.NewEngine(store).Run(job, "in"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineWordCount(b *testing.B)  { benchEngine(b, "wordcount", 256*units.KB) }
func BenchmarkEngineSort(b *testing.B)       { benchEngine(b, "sort", 256*units.KB) }
func BenchmarkEngineGrep(b *testing.B)       { benchEngine(b, "grep", 256*units.KB) }
func BenchmarkEngineTeraSort(b *testing.B)   { benchEngine(b, "terasort", 256*units.KB) }
func BenchmarkEngineNaiveBayes(b *testing.B) { benchEngine(b, "naivebayes", 128*units.KB) }
func BenchmarkEngineFPGrowth(b *testing.B)   { benchEngine(b, "fpgrowth", 32*units.KB) }

// BenchmarkSimulatorSingleRun measures one cluster simulation, the unit of
// work behind every figure.
func BenchmarkSimulatorSingleRun(b *testing.B) {
	w, err := workloads.ByName("terasort")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.NewCluster(sim.AtomNode(8)), sim.JobSpec{
			Name: "terasort", Spec: w.Spec(), DataPerNode: 10 * units.GB,
			BlockSize: 256 * units.MB, Frequency: 1.6 * units.GHz,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benches: the design choices DESIGN.md calls out ----

// BenchmarkAblationCombinerOff quantifies the combiner's effect on real
// WordCount shuffle volume.
func BenchmarkAblationCombinerOff(b *testing.B) {
	w := workloads.NewWordCount()
	input := w.Generate(256*units.KB, 42)
	for _, combiner := range []bool{true, false} {
		name := "with-combiner"
		if !combiner {
			name = "without-combiner"
		}
		b.Run(name, func(b *testing.B) {
			var shuffle units.Bytes
			for i := 0; i < b.N; i++ {
				store, err := hdfs.NewStore(hdfs.Config{BlockSize: 64 * units.KB, Replication: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := store.Write("in", input); err != nil {
					b.Fatal(err)
				}
				cfg := mapreduce.DefaultConfig("wc")
				cfg.NumReducers = 2
				job, err := w.Build(cfg, input)
				if err != nil {
					b.Fatal(err)
				}
				if !combiner {
					job.Combiner = nil
				}
				res, err := mapreduce.NewEngine(store).Run(job, "in")
				if err != nil {
					b.Fatal(err)
				}
				shuffle = res.Counters.ShuffleBytes
			}
			b.ReportMetric(float64(shuffle), "shuffle-bytes")
		})
	}
}

// BenchmarkAblationSortBuffer sweeps io.sort.mb in the simulator, the knob
// behind the 512 MB block penalty.
func BenchmarkAblationSortBuffer(b *testing.B) {
	w, err := workloads.ByName("wordcount")
	if err != nil {
		b.Fatal(err)
	}
	for _, buf := range []units.Bytes{50 * units.MB, 100 * units.MB, 400 * units.MB} {
		b.Run(fmt.Sprintf("buffer-%v", buf), func(b *testing.B) {
			var tm float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.NewCluster(sim.AtomNode(8)), sim.JobSpec{
					Name: "wordcount", Spec: w.Spec(), DataPerNode: units.GB,
					BlockSize: 512 * units.MB, Frequency: 1.8 * units.GHz, SortBuffer: buf,
				})
				if err != nil {
					b.Fatal(err)
				}
				tm = float64(r.Total.Time)
			}
			b.ReportMetric(tm, "sim-seconds")
		})
	}
}

// BenchmarkAblationLatencyHiding contrasts the big core with its
// out-of-order latency hiding disabled — the mechanism behind the Sort gap.
func BenchmarkAblationLatencyHiding(b *testing.B) {
	w, err := workloads.ByName("sort")
	if err != nil {
		b.Fatal(err)
	}
	for _, crippled := range []bool{false, true} {
		name := "ooo-hiding-on"
		if crippled {
			name = "ooo-hiding-off"
		}
		b.Run(name, func(b *testing.B) {
			node := sim.XeonNode(8)
			if crippled {
				node.Core.StallExposure = sim.AtomNode(8).Core.StallExposure
				node.Core.MLP = sim.AtomNode(8).Core.MLP
			}
			var tm float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.NewCluster(node), sim.JobSpec{
					Name: "sort", Spec: w.Spec(), DataPerNode: units.GB,
					BlockSize: 256 * units.MB, Frequency: 1.8 * units.GHz,
				})
				if err != nil {
					b.Fatal(err)
				}
				tm = float64(r.Total.Time)
			}
			b.ReportMetric(tm, "sim-seconds")
		})
	}
}

// BenchmarkAblationLocality quantifies the HDFS data-locality knob: the
// same job with node-local reads vs fully remote reads.
func BenchmarkAblationLocality(b *testing.B) {
	w, err := workloads.ByName("sort")
	if err != nil {
		b.Fatal(err)
	}
	for _, nl := range []float64{0, 1} {
		name := "node-local"
		if nl > 0 {
			name = "off-node"
		}
		b.Run(name, func(b *testing.B) {
			var tm float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.NewCluster(sim.AtomNode(8)), sim.JobSpec{
					Name: "sort", Spec: w.Spec(), DataPerNode: 10 * units.GB,
					BlockSize: 256 * units.MB, Frequency: 1.8 * units.GHz,
					NonLocalFraction: nl,
				})
				if err != nil {
					b.Fatal(err)
				}
				tm = float64(r.Total.Time)
			}
			b.ReportMetric(tm, "sim-seconds")
		})
	}
}

func BenchmarkExtDSE(b *testing.B)          { benchArtefact(b, "ext-dse") }
func BenchmarkExtPhaseSplit(b *testing.B)   { benchArtefact(b, "ext-phasesplit") }
func BenchmarkExtPerPhaseDVFS(b *testing.B) { benchArtefact(b, "ext-dvfs") }

func BenchmarkExtPowerBreakdown(b *testing.B) { benchArtefact(b, "ext-power") }
