package heterohadoop_test

// arena_parity_test.go pins the arena fast path's equivalence contract: a
// job whose mapper/reducer/partitioner expose the byte-level interfaces
// (ByteMapper, StreamReducer, BytePartitioner) must produce output,
// sorted output and counters byte-identical to the same job forced through
// the legacy string adapters. The fuzz target drives all six workloads
// plus an adversarial echo job (empty keys and values, multi-KB keys,
// non-UTF8 bytes, duplicate keys spanning spill segments) through both
// paths; the deterministic test pins exact counter parity — spill, merge
// and shuffle byte accounting included — for every workload.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"heterohadoop/internal/hdfs"
	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// stringOnlyJob rewraps a job's user code in the plain func adapters, which
// implement only the string interfaces: the engine's type assertions for
// the byte fast paths all fail, forcing the legacy string route through
// the same arena machinery. A nil partitioner is pinned to the wrapped
// default so the engine's built-in hash partitioner cannot sneak its byte
// path back in.
func stringOnlyJob(job mapreduce.Job) mapreduce.Job {
	out := job
	out.Mapper = mapreduce.MapperFunc(job.Mapper.Map)
	if job.Combiner != nil {
		out.Combiner = mapreduce.ReducerFunc(job.Combiner.Reduce)
	}
	if job.Reducer != nil {
		out.Reducer = mapreduce.ReducerFunc(job.Reducer.Reduce)
	}
	p := job.Partitioner
	if p == nil {
		p = mapreduce.HashPartitioner()
	}
	out.Partitioner = mapreduce.PartitionerFunc(p.Partition)
	return out
}

// runParityJob executes a job over input without failing the test, so
// callers can require that both paths agree on errors too.
func runParityJob(tb testing.TB, job mapreduce.Job, input []byte) (*mapreduce.Result, error) {
	tb.Helper()
	store, err := hdfs.NewStore(hdfs.Config{BlockSize: units.Bytes(len(input))/6 + 1, Replication: 1})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := store.Write("in", input); err != nil {
		tb.Fatal(err)
	}
	return mapreduce.NewEngine(store).Run(job, "in")
}

// parityConfig forces the interesting machinery: several reducers, a sort
// buffer small enough to spill, and fan-in 2 so multi-pass merges run.
func parityConfig(name string, barrier bool) mapreduce.Config {
	cfg := mapreduce.DefaultConfig(name)
	cfg.NumReducers = 3
	cfg.SortBuffer = 4 * units.KB
	cfg.MergeFactor = 2
	cfg.BarrierShuffle = barrier
	cfg.Parallelism = 1
	return cfg
}

// echoMapper splits each line at the first ':' into (key, value) on both
// the string and byte paths — the adversarial record generator for the
// fuzz target (fuzz data chooses the bytes on either side of the colon).
type echoMapper struct{}

func (echoMapper) Map(_, line string, emit mapreduce.Emitter) error {
	if i := strings.IndexByte(line, ':'); i >= 0 {
		emit(line[:i], line[i+1:])
	} else {
		emit(line, "")
	}
	return nil
}

func (echoMapper) MapBytes(_ int, line []byte, emit mapreduce.ByteEmitter) error {
	if i := bytes.IndexByte(line, ':'); i >= 0 {
		emit(line[:i], line[i+1:])
	} else {
		emit(line, nil)
	}
	return nil
}

// buildParityJob returns the fast-path job for a fuzz mode: modes 0-5 are
// the six studied workloads, 6 the adversarial echo job, 7 the echo job
// with a secondary-sort grouping (group on first key byte).
func buildParityJob(mode uint8, cfg mapreduce.Config, input []byte) (mapreduce.Job, error) {
	if mode < 6 {
		return workloads.All()[mode].Build(cfg, input)
	}
	job := mapreduce.Job{
		Config:  cfg,
		Mapper:  echoMapper{},
		Reducer: mapreduce.IdentityReducer(),
	}
	if mode == 7 {
		job.Grouping = func(a, b string) bool {
			if len(a) == 0 || len(b) == 0 {
				return len(a) == len(b)
			}
			return a[0] == b[0]
		}
	}
	return job, nil
}

// comparePaths runs the fast job and its string-forced twin over input and
// fails if any observable — per-partition output, globally sorted output,
// counters, or error behaviour — differs.
func comparePaths(t *testing.T, fast mapreduce.Job, input []byte) {
	t.Helper()
	want, wantErr := runParityJob(t, stringOnlyJob(fast), input)
	got, gotErr := runParityJob(t, fast, input)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error parity: string path err=%v, arena path err=%v", wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if !reflect.DeepEqual(got.Output(), want.Output()) {
		t.Fatalf("arena output differs from string-path output")
	}
	if !reflect.DeepEqual(got.SortedOutput(), want.SortedOutput()) {
		t.Fatalf("arena SortedOutput differs from string path")
	}
	if got.Counters != want.Counters {
		t.Fatalf("counters differ:\narena  %+v\nstring %+v", got.Counters, want.Counters)
	}
}

// TestArenaStringCounterParityAllWorkloads pins exact counter parity — the
// KV.Bytes accounting identity — between the byte fast paths and the
// string adapters for every workload, in both shuffle modes. Spilled,
// merged and shuffled byte counters must match record for record.
func TestArenaStringCounterParityAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			input := w.Generate(48*units.KB, 7)
			for _, barrier := range []bool{true, false} {
				cfg := parityConfig(w.Name(), barrier)
				job, err := w.Build(cfg, input)
				if err != nil {
					t.Fatal(err)
				}
				comparePaths(t, job, input)
			}
		})
	}
}

// FuzzStringVsArenaParity fuzzes the equivalence contract itself. The seed
// corpus covers each workload plus the adversarial record shapes the arena
// must not mangle: empty keys, empty values, multi-kilobyte keys larger
// than the sort buffer's spill granule, invalid UTF-8, and duplicate-key
// runs long enough to span several spill segments.
func FuzzStringVsArenaParity(f *testing.F) {
	for mode := uint8(0); mode < 6; mode++ {
		f.Add(mode, workloads.All()[mode].Generate(4*units.KB, 21))
	}
	f.Add(uint8(6), []byte(":\n:v\nk:\n::\n"))                              // empty keys and values
	f.Add(uint8(6), []byte(strings.Repeat("K", 8192)+":v\nsmall:1\n"))      // multi-KB key
	f.Add(uint8(6), []byte("\xff\xfe\x80:val\nkey:\xc3\x28\n\x00:\x00\n"))  // non-UTF8 bytes
	f.Add(uint8(6), []byte(strings.Repeat("dup:x\n", 600)))                 // duplicates spanning segments
	f.Add(uint8(7), []byte("a1:x\na2:y\nb1:z\na3:w\n"))                     // grouped keys
	f.Add(uint8(7), []byte(strings.Repeat("g", 4096)+":v\n:empty\ng0:q\n")) // grouping with edge keys

	f.Fuzz(func(t *testing.T, mode uint8, data []byte) {
		mode %= 8
		if len(data) == 0 {
			return
		}
		// Bound fuzz cost: FP-Growth's mapper emits quadratic prefix-path
		// bytes per line, the rest stay linear.
		limit := 16 * 1024
		if mode == 5 {
			limit = 2 * 1024
		}
		if len(data) > limit {
			data = data[:limit]
		}
		job, err := buildParityJob(mode, parityConfig("fuzz", true), data)
		if err != nil {
			// Both paths share Build; nothing to compare.
			return
		}
		comparePaths(t, job, data)

		// The streaming shuffle must agree with the string-forced barrier
		// reference on everything but the timing-dependent interim-merge
		// counter.
		sjob, err := buildParityJob(mode, parityConfig("fuzz", false), data)
		if err != nil {
			t.Fatalf("streaming Build failed after barrier Build succeeded: %v", err)
		}
		want, wantErr := runParityJob(t, stringOnlyJob(job), data)
		got, gotErr := runParityJob(t, sjob, data)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("streaming error parity: barrier err=%v, streaming err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !reflect.DeepEqual(got.Output(), want.Output()) {
			t.Fatalf("streaming arena output differs from string-path barrier output")
		}
		gc, wc := got.Counters, want.Counters
		gc.ReduceMergePasses = 0
		wc.ReduceMergePasses = 0
		if gc != wc {
			t.Fatalf("streaming counters differ:\narena  %+v\nstring %+v", gc, wc)
		}
	})
}
