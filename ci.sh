#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
# Runs the static checks, a full build, and the test suite under the race
# detector (the sweep executor, result cache and observer fan-out are
# concurrent by default, so -race is part of the gate, not an optional
# extra), then smoke-tests the observability layer end to end: artefact
# traces must validate strictly (tracer -check), a six-workload phase
# trace must replay into per-run timelines, and a live master+worker pair
# must serve /metrics, /jobs, /tasks and pprof while a real job runs.
set -eux

# Formatting drift gate: gofmt must be a no-op over the whole tree.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go test -race ./...

# Observability smoke: regenerate one artefact with a streaming trace and
# validate the emitted JSONL strictly (decodes line by line, spans balance,
# and an expt.artefact span covers table3) with tracer -check.
trace_file="$(mktemp /tmp/heterohadoop-trace.XXXXXX.jsonl)"
bench_file="$(mktemp /tmp/heterohadoop-bench.XXXXXX.json)"
mr_trace="$(mktemp /tmp/heterohadoop-mrtrace.XXXXXX.jsonl)"
smoke_dir="$(mktemp -d /tmp/heterohadoop-smoke.XXXXXX)"
cleanup() {
	[ -n "${worker_pid:-}" ] && kill "$worker_pid" 2>/dev/null || true
	[ -n "${master_pid:-}" ] && kill "$master_pid" 2>/dev/null || true
	rm -rf "$trace_file" "$bench_file" "$mr_trace" "$smoke_dir"
}
trap cleanup EXIT
go run ./cmd/experiments -only table3 -trace "$trace_file" -progress >/dev/null
go run ./cmd/tracer -check -artefacts table3 "$trace_file"

# Phase-timeline smoke: trace all six workloads through the in-process
# engine and replay the trace offline. The tracer must reconstruct every
# run (both executor modes per workload), report the paper's four-way phase
# split and a critical path, and skip nothing — a live-written trace has no
# excuse for malformed lines.
go run ./cmd/benchmr -workloads wordcount,naivebayes,grep,sort,terasort,fpgrowth \
	-size 262144 -out "$smoke_dir/bench-trace.json" -trace "$mr_trace" \
	-allow-serial >/dev/null
tracer_out="$(go run ./cmd/tracer "$mr_trace")"
for wl in wordcount naivebayes grep sort terasort fpgrowth; do
	echo "$tracer_out" | grep -q "^run $wl/serial "
	echo "$tracer_out" | grep -q "^run $wl/parallel "
done
echo "$tracer_out" | grep -q '  paper split: '
echo "$tracer_out" | grep -q '  critical path: '
! echo "$tracer_out" | grep -q 'skipped'

# Energy-attribution smoke: two benchmr captures simulate the paper's two
# core classes (each run stamps its -power-profile class on every traced
# phase event), and tracer -energy over the concatenated mixed-class trace
# must attribute non-zero joules to all four paper phases, report per-job
# EDP, and render the big-vs-little comparison table. The recorded rows
# must carry the energy trajectory fields.
go run ./cmd/benchmr -workloads wordcount -size 262144 -power-profile big \
	-out "$smoke_dir/bench-big.json" -trace "$smoke_dir/trace-big.jsonl" \
	-allow-serial >/dev/null
go run ./cmd/benchmr -workloads terasort -size 262144 -power-profile little \
	-out "$smoke_dir/bench-little.json" -trace "$smoke_dir/trace-little.jsonl" \
	-allow-serial >/dev/null
grep -q '"est_joules"' "$smoke_dir/bench-big.json"
grep -q '"edp"' "$smoke_dir/bench-big.json"
grep -q '"go_version"' "$smoke_dir/bench-big.json"
grep -q '"os_arch"' "$smoke_dir/bench-big.json"
cat "$smoke_dir/trace-big.jsonl" "$smoke_dir/trace-little.jsonl" \
	>"$smoke_dir/trace-mixed.jsonl"
energy_out="$(go run ./cmd/tracer -energy "$smoke_dir/trace-mixed.jsonl")"
echo "$energy_out" | grep -q '^run wordcount/serial (epoch 0): energy .* J, edp .* J·s over '
echo "$energy_out" | grep -q '^run terasort/parallel (epoch 0): energy '
for bucket in map sort shuffle reduce; do
	echo "$energy_out" | grep "^  energy $bucket " | grep -qv ' 0\.000000 J'
done
echo "$energy_out" | grep -q '^class comparison:$'
echo "$energy_out" | grep -q '^  big/little energy ratio '

# Live-plane smoke: a real distributed job runs while master and worker
# each serve -http. The master's plane must expose the job and task tables
# and the required Prometheus series, the get_task counter must be
# monotone across scrapes (the worker keeps polling), and the worker's
# plane must serve phase histograms and pprof. The worker declares the
# little core class, so its plane must additionally export the live energy
# series (hh_energy_joules per paper phase, hh_edp per job), and the
# joule counter must be monotone non-decreasing across scrapes.
go build -o "$smoke_dir/hadoopd" ./cmd/hadoopd
"$smoke_dir/hadoopd" -role master -addr 127.0.0.1:0 -http 127.0.0.1:0 \
	>"$smoke_dir/master.log" 2>&1 &
master_pid=$!
for _ in $(seq 1 100); do
	grep -q '^http listening on ' "$smoke_dir/master.log" && break
	sleep 0.1
done
master_addr="$(sed -n 's/^master listening on //p' "$smoke_dir/master.log")"
master_http="$(sed -n 's/^http listening on //p' "$smoke_dir/master.log")"
"$smoke_dir/hadoopd" -role worker -id smoke-w0 -master "$master_addr" \
	-http 127.0.0.1:0 -power-profile little >"$smoke_dir/worker.log" 2>&1 &
worker_pid=$!
for _ in $(seq 1 100); do
	grep -q '^http listening on ' "$smoke_dir/worker.log" && break
	sleep 0.1
done
worker_http="$(sed -n 's/^http listening on //p' "$smoke_dir/worker.log")"
# The task tables are dropped when a job completes, so /jobs and /tasks
# are scraped while the job is in flight: submit in the background, poll
# until the tables show the running job, then wait for the result.
seq 1 100000 >"$smoke_dir/input.txt"
"$smoke_dir/hadoopd" -role submit -master "$master_addr" -workload wordcount \
	-input "$smoke_dir/input.txt" -reducers 2 -block 2048 >/dev/null &
submit_pid=$!
tables_seen=0
for _ in $(seq 1 200); do
	if curl -sf "http://$master_http/jobs" | grep -q '"workload": "wordcount"' &&
		curl -sf "http://$master_http/tasks" | grep -q '"kind": "map"' &&
		curl -sf "http://$master_http/tasks?job=job-1" | grep -q '"job": "job-1"'; then
		tables_seen=1
		break
	fi
	sleep 0.05
done
[ "$tables_seen" = 1 ]
wait "$submit_pid"
master_metrics="$(curl -sf "http://$master_http/metrics")"
echo "$master_metrics" | grep -q '^# TYPE hh_dist_rpc_get_task_total counter$'
echo "$master_metrics" | grep -q '^# TYPE hh_phase_map_schedule_seconds histogram$'
echo "$master_metrics" | grep -q '^hh_progress_done{label="dist.map",job="job-1"} '
first_polls="$(echo "$master_metrics" | sed -n 's/^hh_dist_rpc_get_task_total //p')"
sleep 0.3
second_polls="$(curl -sf "http://$master_http/metrics" | sed -n 's/^hh_dist_rpc_get_task_total //p')"
[ "$second_polls" -gt "$first_polls" ]
worker_metrics="$(curl -sf "http://$worker_http/metrics")"
echo "$worker_metrics" | grep -q '^# TYPE hh_phase_map_map_seconds histogram$'
echo "$worker_metrics" | grep -q '^# TYPE hh_phase_reduce_merge_fetch_seconds histogram$'
echo "$worker_metrics" | grep -q '^hh_phase_map_map_seconds_count [1-9]'
echo "$worker_metrics" | grep -q '^# TYPE hh_energy_joules counter$'
echo "$worker_metrics" | grep -q '^hh_energy_joules{job="wordcount",phase="map",class="little"} '
echo "$worker_metrics" | grep -q '^# TYPE hh_edp gauge$'
echo "$worker_metrics" | grep -q '^hh_edp{job="wordcount"} '
first_joules="$(echo "$worker_metrics" | awk -F'} ' '/^hh_energy_joules\{/ {sum += $2} END {printf "%.9f", sum}')"
sleep 0.2
second_joules="$(curl -sf "http://$worker_http/metrics" | awk -F'} ' '/^hh_energy_joules\{/ {sum += $2} END {printf "%.9f", sum}')"
awk -v a="$first_joules" -v b="$second_joules" 'BEGIN {exit !(a > 0 && b >= a)}'
curl -sf "http://$worker_http/debug/pprof/cmdline" >/dev/null
kill "$worker_pid" "$master_pid"
wait "$worker_pid" "$master_pid" 2>/dev/null || true
worker_pid='' master_pid=''

# Benchmark smoke: every engine, shuffle-merge, and telemetry benchmark
# must run one iteration cleanly (catches benchmarks broken by engine
# refactors without paying for a full measurement); BenchmarkNoopObserver
# additionally pins the no-observer phase path in the test suite above.
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkShuffleMerge|BenchmarkSortedOutput|BenchmarkNoopObserver' -benchtime 1x ./internal/mapreduce/ .

# Contended-shuffle smoke: the sharded-collector stress case (many small
# map tasks fanning into 32 partitions) must complete at both 1 and 4
# scheduler widths — the -cpu 1 point pins the single-shard degenerate
# path, the -cpu 4 point the cross-shard handoff. One iteration each;
# the scaling lane below measures the actual speedup.
go test -run '^$' -bench 'BenchmarkContendedShuffle' -benchtime 1x -cpu 1,4 ./internal/mapreduce/

# Benchmark trajectory: re-measure the engine executor and print a
# benchstat-style delta against the committed BENCH_mapreduce.json (8 MB
# wordcount rows are the CI-sized comparison points; the 64 MB rows in the
# baseline are the paper-scale record). The speedup gate arms only on
# machines with at least 4 CPUs; the allocation gate is machine-independent
# and arms whenever the matching baseline row carries allocs_per_op — it is
# the regression fence for the flat-arena record path (a revived per-record
# allocation multiplies allocs/op by orders of magnitude, so 1.5x is
# generous headroom for noise while catching any real regression).
# -allow-serial keeps this lane runnable on single-core CI boxes; the
# committed baseline itself must come from a -cores matrix run.
go run ./cmd/benchmr -workloads wordcount -size 8388608 \
	-baseline BENCH_mapreduce.json -out "$bench_file" -minspeedup 2 \
	-maxallocfactor 1.5 -allow-serial

# Scaling smoke: on machines with real parallelism, re-measure the bench
# matrix point at GOMAXPROCS=4 with the speedup gate armed. Terasort is
# shuffle-dominated, so with the sharded collectors it must clear a real
# 2x speedup at 4 cores — parallel-barely-beating-serial is a regression
# fence for collector contention creeping back in. Wordcount's map phase
# dominates and its scaling varies more across machines, so it keeps the
# weaker does-not-regress gate. Skipped on smaller machines, where an
# oversubscribed scheduler measures contention, not scaling.
if [ "$(getconf _NPROCESSORS_ONLN)" -ge 4 ]; then
	go run ./cmd/benchmr -workloads terasort -size 8388608 \
		-cores 4 -out "$smoke_dir/bench-scaling.json" -minspeedup 2.0
	go run ./cmd/benchmr -workloads wordcount -size 8388608 \
		-cores 4 -out "$smoke_dir/bench-scaling-wc.json" -minspeedup 1.0
fi

# Memory-ceiling lane: a paper-scale terasort (1 GB by default; override
# with HH_MEMLANE_SIZE) runs out-of-core under a GOMEMLIMIT of a quarter of
# the input. benchmr exits non-zero unless the bounded runs actually spill
# (Spills and SpillFilesWritten > 0), produce output byte-identical to an
# unbounded in-memory reference in both executor modes, and leave the spill
# directory empty afterwards — including on a probe run whose context is
# cancelled the moment the first spill file lands. The input itself is
# streamed to disk in chunks, so nothing in the lane ever holds the dataset
# resident; the grep pins that the recorded rows carry the spill counters.
memlane_size="${HH_MEMLANE_SIZE:-1073741824}"
go run ./cmd/benchmr -workloads terasort -size "$memlane_size" \
	-memlimit "$((memlane_size / 4))" -spill-dir "$smoke_dir/spill" \
	-out "$smoke_dir/bench-ooc.json"
grep -q '"spill_files_written"' "$smoke_dir/bench-ooc.json"
test -z "$(ls -A "$smoke_dir/spill")"

# String-vs-arena equivalence corpus plus the output-path parity suite:
# the parity fuzz seeds (all six workloads plus adversarial record shapes)
# already run inside the blanket race gate above; this re-runs them
# spotlighted, still under -race, so a corpus failure is easy to attribute.
# The second run covers the arena-backed output path end to end: the
# passthrough identity reduce, the collector's arrival-order property, the
# merge-based SortedOutput and the Result gob wire round-trip.
# Chaos lane: the multi-tenant fault path spotlighted under -race — eight
# concurrent jobs on three workers with one worker killed mid-run and a
# master restart from its snapshot, plus the lost-shuffle, eviction and
# snapshot-resume regressions. These run inside the blanket race gate too;
# -count=2 here shakes out scheduling-order flakes and makes a chaos
# failure easy to attribute.
go test -race -count=2 -run 'TestChaosMultiTenantRecovery|TestLostShuffleMapRerun|TestWorkerEvictionRequeuesInFlight|TestSnapshotRestartResumesJob' ./internal/dist/

go test -race -run 'TestArenaStringCounterParityAllWorkloads|FuzzStringVsArenaParity' .
go test -race -run 'TestPassthroughReduceParity|TestPassthroughDisabledUnderGrouping|TestCollectorArrivalOrderProperty|TestCollectorSingleSegmentPartition|TestSortedOutputMergeMatchesSort|TestSortedOutputUnsortedPartitionFallback|TestResultGobRoundTrip|TestStreamingMatchesBarrierConcurrentPublication' ./internal/mapreduce/
