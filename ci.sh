#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
# Runs the static checks, a full build, and the test suite under the race
# detector (the sweep executor and result cache are concurrent by default,
# so -race is part of the gate, not an optional extra).
set -eux

go vet ./...
go build ./...
go test -race ./...
