#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
# Runs the static checks, a full build, and the test suite under the race
# detector (the sweep executor, result cache and observer fan-out are
# concurrent by default, so -race is part of the gate, not an optional
# extra), then smoke-tests the observability layer end to end: one artefact
# regenerated with -trace must emit JSONL that tracecheck can decode and
# that covers the artefact's span.
set -eux

# Formatting drift gate: gofmt must be a no-op over the whole tree.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go test -race ./...

# Observability smoke: regenerate one artefact with a streaming trace and
# validate the emitted JSONL (decodes line by line, spans balance, and an
# expt.artefact span covers table3).
trace_file="$(mktemp /tmp/heterohadoop-trace.XXXXXX.jsonl)"
bench_file="$(mktemp /tmp/heterohadoop-bench.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file"' EXIT
go run ./cmd/experiments -only table3 -trace "$trace_file" -progress >/dev/null
go run ./internal/obs/tracecheck -artefacts table3 "$trace_file"

# Benchmark smoke: every engine and shuffle-merge benchmark must run one
# iteration cleanly (catches benchmarks broken by engine refactors without
# paying for a full measurement).
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkShuffleMerge' -benchtime 1x ./internal/mapreduce/ .

# Benchmark trajectory: re-measure the engine executor and print a
# benchstat-style delta against the committed BENCH_mapreduce.json (8 MB
# wordcount rows are the CI-sized comparison points; the 64 MB rows in the
# baseline are the paper-scale record). The speedup gate arms only on
# machines with GOMAXPROCS >= 4; the allocation gate is machine-independent
# and arms whenever the matching baseline row carries allocs_per_op — it is
# the regression fence for the flat-arena record path (a revived per-record
# allocation multiplies allocs/op by orders of magnitude, so 1.5x is
# generous headroom for noise while catching any real regression).
go run ./cmd/benchmr -workloads wordcount -size 8388608 \
	-baseline BENCH_mapreduce.json -out "$bench_file" -minspeedup 2 \
	-maxallocfactor 1.5

# String-vs-arena equivalence corpus: the parity fuzz seeds (all six
# workloads plus adversarial record shapes) already run inside the blanket
# race gate above; this re-runs them spotlighted, still under -race, so a
# corpus failure is easy to attribute.
go test -race -run 'TestArenaStringCounterParityAllWorkloads|FuzzStringVsArenaParity' .
