#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
# Runs the static checks, a full build, and the test suite under the race
# detector (the sweep executor, result cache and observer fan-out are
# concurrent by default, so -race is part of the gate, not an optional
# extra), then smoke-tests the observability layer end to end: one artefact
# regenerated with -trace must emit JSONL that tracecheck can decode and
# that covers the artefact's span.
set -eux

# Formatting drift gate: gofmt must be a no-op over the whole tree.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go test -race ./...

# Observability smoke: regenerate one artefact with a streaming trace and
# validate the emitted JSONL (decodes line by line, spans balance, and an
# expt.artefact span covers table3).
trace_file="$(mktemp /tmp/heterohadoop-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_file"' EXIT
go run ./cmd/experiments -only table3 -trace "$trace_file" -progress >/dev/null
go run ./internal/obs/tracecheck -artefacts table3 "$trace_file"
