module heterohadoop

go 1.22
