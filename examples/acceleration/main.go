// Acceleration: the paper's §3.4 study — offload the map phase to an FPGA
// and watch how the big-vs-little choice changes for the code that remains
// on the CPU (Eq. 1's before/after speedup ratio).
package main

import (
	"fmt"
	"log"

	"heterohadoop/internal/accel"
	"heterohadoop/internal/sim"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func main() {
	fpga := accel.PCIeGen3x8()
	fmt.Printf("accelerator: %s (%v link, %v active)\n\n", fpga.Name, fpga.LinkBandwidth, fpga.ActivePower)

	for _, name := range []string{"wordcount", "terasort", "fpgrowth"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		data := units.Bytes(units.GB)
		if name == "fpgrowth" {
			data = 10 * units.GB
		}
		job := sim.JobSpec{
			Name: name, Spec: w.Spec(), DataPerNode: data,
			BlockSize: 512 * units.MB, Frequency: 1.8 * units.GHz,
		}
		atomBefore, err := sim.Run(sim.NewCluster(sim.AtomNode(8)), job)
		if err != nil {
			log.Fatal(err)
		}
		xeonBefore, err := sim.Run(sim.NewCluster(sim.XeonNode(8)), job)
		if err != nil {
			log.Fatal(err)
		}
		before := float64(atomBefore.Total.Time) / float64(xeonBefore.Total.Time)
		fmt.Printf("%s: before acceleration the big core is %.2fx faster\n", name, before)

		for _, k := range []float64{5, 30, 100} {
			off := accel.DefaultOffload(k)
			atomAfter, err := accel.Apply(atomBefore, data, fpga, off)
			if err != nil {
				log.Fatal(err)
			}
			xeonAfter, err := accel.Apply(xeonBefore, data, fpga, off)
			if err != nil {
				log.Fatal(err)
			}
			ratio := accel.SpeedupRatio(atomBefore, xeonBefore, atomAfter, xeonAfter)
			after := float64(atomAfter.TotalTime) / float64(xeonAfter.TotalTime)
			fmt.Printf("  %4gx map acceleration: big-core advantage %.2fx (Eq.1 ratio %.2f), map speedup little %.1fx / big %.1fx\n",
				k, after, ratio, atomAfter.MapSpeedup, xeonAfter.MapSpeedup)
		}
		fmt.Println()
	}
	fmt.Println("ratios below 1 mean acceleration shrinks the payoff of migrating the remaining CPU code to the big core —")
	fmt.Println("with a strong accelerator, the frugal little core becomes the better host (the paper's conclusion).")
}
