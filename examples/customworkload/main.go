// Customworkload: how a downstream user adds their own application to the
// library — implement the workloads.Workload interface (generator, job
// builder, calibrated spec) and the whole stack lights up: the real engine
// runs it, the characterizer compares big vs little, and the scheduler
// classifies it.
package main

import (
	"fmt"
	"log"
	"strings"

	"heterohadoop/internal/core"
	"heterohadoop/internal/isa"
	"heterohadoop/internal/mapreduce"
	"heterohadoop/internal/sched"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

// InvertedIndex builds a word -> document-list index, the classic search
// back-end job: compute-bound tokenization with a moderate shuffle.
type InvertedIndex struct{}

// Name returns the workload identifier.
func (*InvertedIndex) Name() string { return "invertedindex" }

// Class declares it compute-bound for the paper's scheduling policy.
func (*InvertedIndex) Class() workloads.Class { return workloads.Compute }

// Generate reuses the Zipf text generator; each line is one "document".
func (*InvertedIndex) Generate(size units.Bytes, seed int64) []byte {
	return workloads.GenerateText(size, seed)
}

// Build assembles the job: map emits (word, docID) once per distinct word
// per document; reduce concatenates sorted unique document ids.
func (*InvertedIndex) Build(cfg mapreduce.Config, _ []byte) (mapreduce.Job, error) {
	mapper := mapreduce.MapperFunc(func(offset, line string, emit mapreduce.Emitter) error {
		seen := map[string]bool{}
		for _, w := range strings.Fields(line) {
			if !seen[w] {
				seen[w] = true
				emit(w, offset) // the line offset is the document id
			}
		}
		return nil
	})
	reducer := mapreduce.ReducerFunc(func(word string, docs []string, emit mapreduce.Emitter) error {
		emit(word, strings.Join(docs, ","))
		return nil
	})
	return mapreduce.Job{Config: cfg, Mapper: mapper, Reducer: reducer}, nil
}

// Spec is the calibrated profile the simulator uses; a user would derive
// these numbers with internal/trace the way the bundled workloads do.
func (*InvertedIndex) Spec() workloads.Spec {
	return workloads.Spec{
		MapProfile: isa.Profile{
			Name:                 "invertedindex/map",
			InstructionsPerByte:  45,
			Mix:                  isa.Mix{isa.IntALU: 0.46, isa.Load: 0.26, isa.Store: 0.10, isa.Branch: 0.18},
			Mem:                  isa.MemBehavior{WorkingSet: 4 * units.MB, Locality: 0.25, CompulsoryMissRatio: 0.005, Dependence: 0.3},
			BranchMispredictRate: 0.05,
			ILP:                  1.8,
		},
		ReduceProfile: isa.Profile{
			Name:                 "invertedindex/reduce",
			InstructionsPerByte:  20,
			Mix:                  isa.Mix{isa.IntALU: 0.38, isa.Load: 0.30, isa.Store: 0.15, isa.Branch: 0.17},
			Mem:                  isa.MemBehavior{WorkingSet: 16 * units.MB, Locality: 0.3, CompulsoryMissRatio: 0.01, Dependence: 0.45},
			BranchMispredictRate: 0.04,
			ILP:                  1.8,
		},
		MapOutputRatio:    2.2,
		ShuffleRatio:      0.8, // doc ids survive the shuffle; no combiner
		ReduceOutputRatio: 0.7,
		SpillReduction:    1,
		HasReduce:         true,
	}
}

var _ workloads.Workload = (*InvertedIndex)(nil)

func main() {
	ii := &InvertedIndex{}

	// 1. Real run: index 32 KB of documents.
	res, err := core.RunReal(ii, 32*units.KB, 8*units.KB, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	out := res.SortedOutput()
	fmt.Printf("indexed %d distinct words; e.g. %q -> docs [%s...]\n",
		len(out), out[0].Key, firstN(out[0].Value, 30))

	// 2. Characterize big vs little at 1 GB/node.
	cmp, err := core.Compare(ii, units.GB, 256*units.MB, 1.8*units.GHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("big core %.2fx faster; EDP winner: %v (ratio %.2f)\n",
		cmp.TimeRatio, cmp.EDPWinner, cmp.EDPRatio)

	// 3. Let the paper's policy place it.
	d := sched.Policy(ii.Class(), sched.MinEDP)
	fmt.Printf("policy schedules it on %v x%d (%s)\n", d.Kind, d.Cores, d.Rationale)
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
