// Costanalysis: the operational-vs-capital cost study behind the paper's
// Table 3 and Fig 17 spider graphs — EDP/ED2P/EDAP/ED2AP for 2-8 cores on
// both platforms, normalized to the 8-Xeon-core configuration.
package main

import (
	"fmt"
	"log"

	"heterohadoop/internal/cpu"
	"heterohadoop/internal/metrics"
	"heterohadoop/internal/sched"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func main() {
	for _, name := range []string{"wordcount", "sort", "terasort"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (class %v), 1 GB/node @1.8 GHz, normalized to Xeon x8:\n", name, w.Class())

		ref, err := sched.Evaluate(w, cpu.Big, 8, units.GB, 1.8*units.GHz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8s %8s %8s %8s\n", "config", "EDP", "ED2P", "EDAP", "ED2AP")
		for _, kind := range []cpu.Kind{cpu.Little, cpu.Big} {
			for _, m := range sched.CoreCounts {
				s, err := sched.Evaluate(w, kind, m, units.GB, 1.8*units.GHz)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-8s %8.2f %8.2f %8.2f %8.2f\n",
					fmt.Sprintf("%v x%d", kind, m),
					metrics.Ratio(s.EDP(), ref.EDP()),
					metrics.Ratio(s.ED2P(), ref.ED2P()),
					metrics.Ratio(s.EDAP(), ref.EDAP()),
					metrics.Ratio(s.ED2AP(), ref.ED2AP()))
			}
		}
		fmt.Println()
	}
	fmt.Println("reading the spider data: values < 1 beat the 8-Xeon baseline on that axis.")
	fmt.Println("little cores dominate EDP/EDAP for compute-bound work; a couple of big cores win ED2AP for hybrids;")
	fmt.Println("the I/O-bound sort is the exception where big cores win everything but capital cost.")
}
