// Phasesplit: the heterogeneous future the paper's characterization points
// at — schedule the map phase on the little cores and the memory-intensive
// reduce pipeline on the big cores, and compare against both homogeneous
// deployments.
package main

import (
	"fmt"
	"log"

	"heterohadoop/internal/sim"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func main() {
	little := sim.NewCluster(sim.AtomNode(8))
	big := sim.NewCluster(sim.XeonNode(8))

	for _, name := range []string{"naivebayes", "terasort", "wordcount"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		data := units.Bytes(units.GB)
		if name == "naivebayes" {
			data = 10 * units.GB
		}
		job := sim.JobSpec{
			Name: name, Spec: w.Spec(), DataPerNode: data,
			BlockSize: 512 * units.MB, Frequency: 1.8 * units.GHz,
		}

		homoL, err := sim.Run(little, job)
		if err != nil {
			log.Fatal(err)
		}
		homoB, err := sim.Run(big, job)
		if err != nil {
			log.Fatal(err)
		}
		split, err := sim.RunPhaseSplit(little, big, job)
		if err != nil {
			log.Fatal(err)
		}

		edp := func(t units.Seconds, e units.Joules) float64 { return float64(e) * float64(t) }
		fmt.Printf("%s (%v/node):\n", name, data)
		fmt.Printf("  all-little:            %7.1fs  EDP %.3g\n",
			float64(homoL.Total.Time), edp(homoL.Total.Time, homoL.Total.Energy))
		fmt.Printf("  all-big:               %7.1fs  EDP %.3g\n",
			float64(homoB.Total.Time), edp(homoB.Total.Time, homoB.Total.Energy))
		fmt.Printf("  little-map/big-reduce: %7.1fs  EDP %.3g  (handoff %.1fs)\n\n",
			float64(split.Total.Time), split.EDP(), float64(split.Handoff.Time))
	}
	fmt.Println("reading the results: the split buys back part of the all-little cluster's execution time")
	fmt.Println("(its reduce pipeline runs at big-core speed) at an energy premium plus the shuffle handoff;")
	fmt.Println("for these applications the homogeneous little cluster remains EDP-optimal, matching the")
	fmt.Println("paper's whole-application verdicts, while the split sits between the two on delay.")
}
