// Quickstart: run WordCount for real on the MapReduce engine, then
// characterize it on the big and little server models and print the
// big-vs-little verdict — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"heterohadoop/internal/core"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func main() {
	wc := workloads.NewWordCount()

	// 1. Execute the real job over 64 KB of generated Zipf text split into
	//    16 KB HDFS blocks (4 map tasks), with 2 reducers.
	res, err := core.RunReal(wc, 64*units.KB, 16*units.KB, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("real engine run:")
	fmt.Printf("  %v\n", res.Counters)
	top := res.SortedOutput()
	fmt.Printf("  %d distinct words; first three: ", len(top))
	for i := 0; i < 3 && i < len(top); i++ {
		fmt.Printf("%s=%s ", top[i].Key, top[i].Value)
	}
	fmt.Println()

	// 2. Characterize the same workload at paper scale (1 GB/node) on both
	//    server models.
	cmp, err := core.Compare(wc, units.GB, 256*units.MB, 1.8*units.GHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbig vs little at 1 GB/node, 256 MB blocks, 1.8 GHz:")
	fmt.Printf("  little: %6.1fs, %7.1fJ (EDP %.3g)\n",
		float64(cmp.Little.Sim.Total.Time), float64(cmp.Little.Sim.Total.Energy), cmp.Little.Sample.EDP())
	fmt.Printf("  big:    %6.1fs, %7.1fJ (EDP %.3g)\n",
		float64(cmp.Big.Sim.Total.Time), float64(cmp.Big.Sim.Total.Energy), cmp.Big.Sample.EDP())
	fmt.Printf("  the big core is %.2fx faster, but the %v core wins EDP (ratio %.2f)\n",
		cmp.TimeRatio, cmp.EDPWinner, cmp.EDPRatio)

	// 3. Tune the HDFS block size for the little core.
	best, curve, err := core.TuneBlockSize(wc, units.GB, core.Atom())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblock-size tuning on the little core (EDP by block size):\n")
	for _, bs := range []units.Bytes{32 * units.MB, 64 * units.MB, 128 * units.MB, 256 * units.MB, 512 * units.MB} {
		marker := " "
		if bs == best {
			marker = "<- best"
		}
		fmt.Printf("  %8v  %.3g %s\n", bs, curve[bs], marker)
	}
}
