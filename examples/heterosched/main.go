// Heterosched: schedule a mixed stream of Hadoop jobs over a heterogeneous
// big+little pool using the paper's §3.5 policy, and compare the policy's
// choices against the simulator-backed exhaustive optimum.
package main

import (
	"fmt"
	"log"

	"heterohadoop/internal/sched"
	"heterohadoop/internal/units"
	"heterohadoop/internal/workloads"
)

func main() {
	jobs := []workloads.Workload{
		workloads.NewNaiveBayes(), // compute-bound
		workloads.NewSort(),       // I/O-bound
		workloads.NewTeraSort(),   // hybrid
		workloads.NewWordCount(),  // compute-bound
		workloads.NewGrep("ou"),   // hybrid
	}

	pool := sched.Pool{BigCores: 8, LittleCores: 16}
	fmt.Printf("pool: %d big cores, %d little cores\n\n", pool.BigCores, pool.LittleCores)

	for _, goal := range []sched.Goal{sched.MinEDP, sched.MinED2AP} {
		fmt.Printf("goal: minimize %v\n", goal)
		for _, a := range sched.Allocate(pool, jobs, goal) {
			fmt.Printf("  %-10s -> %v x%d  (%s)\n", a.Job, a.Decision.Kind, a.Decision.Cores, a.Decision.Rationale)
		}
		fmt.Println()
	}

	// Simulate a timed job stream on the shared pool under four strategies.
	stream := []sched.StreamJob{
		{Workload: workloads.NewWordCount(), Arrival: 0, Data: units.GB},
		{Workload: workloads.NewSort(), Arrival: 10, Data: units.GB},
		{Workload: workloads.NewTeraSort(), Arrival: 20, Data: units.GB},
		{Workload: workloads.NewNaiveBayes(), Arrival: 30, Data: 10 * units.GB},
		{Workload: workloads.NewGrep("ou"), Arrival: 40, Data: units.GB},
	}
	outcomes, err := sched.CompareStrategies(pool, stream, sched.MinEDP, 1.8*units.GHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("job-stream simulation (5 jobs over a shared 8-big/16-little pool):")
	for _, s := range []sched.Strategy{sched.BigOnlyStrategy, sched.LittleOnlyStrategy, sched.PolicyStrategy, sched.OptimalStrategy} {
		o := outcomes[s]
		fmt.Printf("  %-16s makespan %7.1fs  energy %9.0fJ  mean wait %6.1fs  EDP %.3g\n",
			s, float64(o.Makespan), float64(o.TotalEnergy), float64(o.MeanWait), o.EDP)
	}
	fmt.Println()

	// Validate the policy against exhaustive search for two flagship cases.
	fmt.Println("policy vs exhaustive optimum:")
	for _, tc := range []struct {
		w    workloads.Workload
		goal sched.Goal
		data units.Bytes
	}{
		{workloads.NewNaiveBayes(), sched.MinEDP, 10 * units.GB},
		{workloads.NewSort(), sched.MinEDP, units.GB},
		{workloads.NewTeraSort(), sched.MinED2AP, units.GB},
	} {
		policy := sched.Policy(tc.w.Class(), tc.goal)
		opt, sample, err := sched.Optimal(tc.w, tc.goal, tc.data, 1.8*units.GHz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %-6v policy=%v/%d optimal=%v/%d (score %.3g)\n",
			tc.w.Name(), tc.goal, policy.Kind, policy.Cores, opt.Kind, opt.Cores, sample.EDP())
	}
}
