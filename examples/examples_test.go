// Package examples_test smoke-tests every runnable example: each must
// build, exit zero, and print its headline output.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	bin := t.TempDir() + "/" + name
	build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("running %s: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestQuickstartExample(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{"real engine run", "big vs little", "block-size tuning", "<- best"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart missing %q", want)
		}
	}
}

func TestHeteroschedExample(t *testing.T) {
	out := runExample(t, "heterosched")
	for _, want := range []string{"goal: minimize EDP", "job-stream simulation", "paper-policy", "policy vs exhaustive optimum"} {
		if !strings.Contains(out, want) {
			t.Errorf("heterosched missing %q", want)
		}
	}
}

func TestAccelerationExample(t *testing.T) {
	out := runExample(t, "acceleration")
	for _, want := range []string{"before acceleration", "map acceleration", "Eq.1 ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("acceleration missing %q", want)
		}
	}
}

func TestCostanalysisExample(t *testing.T) {
	out := runExample(t, "costanalysis")
	for _, want := range []string{"normalized to Xeon x8", "little x8", "big x2"} {
		if !strings.Contains(out, want) {
			t.Errorf("costanalysis missing %q", want)
		}
	}
}

func TestPhasesplitExample(t *testing.T) {
	out := runExample(t, "phasesplit")
	for _, want := range []string{"all-little", "all-big", "little-map/big-reduce", "handoff"} {
		if !strings.Contains(out, want) {
			t.Errorf("phasesplit missing %q", want)
		}
	}
}

func TestCustomworkloadExample(t *testing.T) {
	out := runExample(t, "customworkload")
	for _, want := range []string{"indexed", "EDP winner", "policy schedules it on little"} {
		if !strings.Contains(out, want) {
			t.Errorf("customworkload missing %q", want)
		}
	}
}
